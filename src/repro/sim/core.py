"""Discrete-event simulation kernel.

This is the substrate for the entire reproduction: every CPU core, SSD
channel, PCIe link, filesystem, and database in the library is modelled as a
set of *processes* (Python generators) that advance a shared virtual clock by
yielding :class:`Event` objects to an :class:`Environment`.

The design follows the classic event-list formulation (and will look familiar
to SimPy users):

* An :class:`Environment` owns the virtual clock and a priority queue of
  scheduled events.
* An :class:`Event` is a one-shot occurrence with a value (or an exception)
  and a list of callbacks.
* A :class:`Process` wraps a generator; each yielded event suspends the
  process until the event fires, at which point the event's value is sent
  back into the generator (or its exception thrown).

Determinism: ties in the event queue are broken by insertion order, so a
simulation with seeded RNG streams is bit-reproducible.

Fast path
---------

The vast majority of schedules are *immediate*: ``succeed()``/``fail()``
and process completions fire at the current time with default priority.
Those bypass the heap entirely and land on an "immediate deque" whose
entries are totally ordered by their schedule counter.  ``step()`` merges
the two structures by comparing full ``(time, priority, counter)`` keys,
so the firing order is bit-identical to the single-heap formulation —
``tests/sim/test_golden_clock.py`` holds that contract.  One-shot
:class:`Timeout` objects with a single waiter are recycled through a small
free list instead of being re-allocated (guarded by a refcount check so a
timeout anyone still holds a reference to is never reused).
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator
from sys import getrefcount
from typing import Any, Callable, Optional

from repro.errors import InterruptError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

# Event states.
PENDING = 0  #: not yet triggered
TRIGGERED = 1  #: scheduled on the event queue, value decided
PROCESSED = 2  #: callbacks have run

# Condition classes, resolved lazily (sync imports this module) but cached —
# Environment.all_of/any_of are hot paths and must not pay an import per call.
_AllOf = None
_AnyOf = None


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail` decides
    their value and schedules them; the environment then runs their callbacks
    at the current simulation time, marking them *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        self._defused: bool = False

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._state == PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- outcome ------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Decide the event successfully with ``value`` and schedule it."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inline of env._schedule(self): immediate, default priority.
        env = self.env
        self._state = TRIGGERED
        env._counter += 1
        env._imm.append((env._counter, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Decide the event with an exception and schedule it.

        Waiting processes will have ``exception`` thrown into them.  If no
        process waits on a failed event the environment raises the exception
        at the end of the step unless the event is :meth:`defused`.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        self._state = TRIGGERED
        env._counter += 1
        env._imm.append((env._counter, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it won't crash the simulation."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running generator.  Also an event that fires when the generator ends.

    The value of the process-event is the generator's return value; if the
    generator raises, the process-event fails with that exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if not started
        #: or currently being resumed)
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        The process stops waiting on its current target event and resumes
        immediately (at the current simulation time) with the exception.
        Interrupting a finished process is an error.
        """
        if self._state != PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process before it starts")
        # Detach from the event we were waiting on.
        target = self._target
        if self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = InterruptError(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env._schedule(interrupt_ev, priority=0)

    # -- internal -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                return
            except BaseException as exc:
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                return

            if not isinstance(next_event, Event):
                self._generator.close()
                self.env._active_process = None
                self._ok = False
                self._value = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.env._schedule(self)
                return
            if next_event.env is not self.env:
                self._generator.close()
                self.env._active_process = None
                self._ok = False
                self._value = SimulationError(
                    "cannot wait on an event from another environment"
                )
                self.env._schedule(self)
                return

            if next_event._state == PROCESSED:
                # Already fired: feed its value straight back in.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            self.env._active_process = None
            return


class EmptySchedule(Exception):
    """Internal: raised by step() when there is nothing left to do."""


class Environment:
    """Owner of the virtual clock and the pending event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        #: immediate events: scheduled at the current time with default
        #: priority.  Entries are ``(counter, event)`` in counter order; the
        #: clock cannot advance while any are pending, so every entry's fire
        #: time is exactly ``self._now``.
        self._imm: deque[tuple[int, Event]] = deque()
        self._counter: int = 0
        #: recycled one-shot Timeout objects (see ``step()``)
        self._timeout_pool: list[Timeout] = []
        self._active_process: Optional[Process] = None
        #: optional :class:`repro.obs.trace.Tracer`; ``None`` (the default)
        #: means tracing is disabled and instrumentation costs one attribute
        #: check.  Installed via ``repro.obs.install_tracer``.
        self.tracer = None
        #: optional :class:`repro.obs.journal.EventJournal`; same contract as
        #: ``tracer`` — ``None`` means lifecycle-event emission sites cost one
        #: attribute check.  Installed via ``repro.obs.install_journal``.
        self.journal = None
        #: optional :class:`repro.obs.timeline.TimelineRecorder`.  ``None``
        #: (the default) costs one attribute check per ``run()`` call — NOT
        #: per event — and creates no simulation events.  When installed,
        #: a parked sampler re-arms at the start of each run segment so
        #: multi-phase workloads keep a continuous sample cadence.
        self.timeline = None
        #: optional :class:`repro.obs.critpath.CritPathObserver`; same
        #: contract as ``tracer`` — ``None`` (the default) means the
        #: blocked-by/holder instrumentation sites cost one attribute check
        #: and record nothing.  Installed via
        #: ``repro.obs.critpath.install_critpath``; the observer is pure
        #: bookkeeping and creates no simulation events either way.
        self.critpath = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t.delay = delay
            t._ok = True
            t._value = value
            t._defused = False
            self._schedule(t, delay=delay)
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        proc = Process(self, generator, name=name)
        if self.tracer is not None:
            # Spawned processes inherit the spawner's current span so that
            # fan-out work (compaction shards, striped appends) stays inside
            # the span tree of the command or job that launched it.
            self.tracer.on_process_spawn(proc)
        return proc

    def all_of(self, events: list[Event]) -> Event:
        """Event that fires when all of ``events`` have succeeded."""
        # repro.sim.sync imports this module, so the reference is resolved
        # lazily — but only once, not on every call (this is a hot path).
        global _AllOf
        if _AllOf is None:
            from repro.sim.sync import AllOf as _allof

            _AllOf = _allof
        return _AllOf(self, events)

    def any_of(self, events: list[Event]) -> Event:
        """Event that fires when any of ``events`` has succeeded."""
        global _AnyOf
        if _AnyOf is None:
            from repro.sim.sync import AnyOf as _anyof

            _AnyOf = _anyof
        return _AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        event._state = TRIGGERED
        self._counter += 1
        if delay == 0.0 and priority == 1:
            # Immediate, default-priority: the common case (succeed/fail,
            # process completion, zero timeouts).  The deque keeps these in
            # counter order without heap churn.
            self._imm.append((self._counter, event))
        else:
            heapq.heappush(
                self._queue, (self._now + delay, priority, self._counter, event)
            )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._imm:
            return self._now  # immediate events always fire at the current time
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        The next event is the minimum of the heap's ``(time, priority,
        counter)`` key and the immediate deque's front ``(self._now, 1,
        counter)`` key — exactly the order a single heap would produce.
        """
        imm = self._imm
        queue = self._queue
        if imm:
            take_heap = False
            if queue:
                head = queue[0]
                # Heap times are always >= self._now, so the heap wins only
                # on a same-time, lower-(priority, counter) key.
                if head[0] == self._now and (
                    head[1] < 1 or (head[1] == 1 and head[2] < imm[0][0])
                ):
                    take_heap = True
            if take_heap:
                when, _prio, _cnt, event = heapq.heappop(queue)
            else:
                _cnt, event = imm.popleft()
        else:
            try:
                when, _prio, _cnt, event = heapq.heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            self._now = when
        callbacks = event.callbacks
        event._state = PROCESSED
        if len(callbacks) == 1:
            # Single waiter (the overwhelmingly common case): run it off the
            # existing list instead of allocating a replacement.
            callback = callbacks[0]
            callbacks.clear()
            callback(event)
            if event._ok:
                # One-shot timeouts nobody else references are recycled.
                # refcount == 2 means only our local + the getrefcount
                # argument see the object, so reuse cannot be observed.
                if (
                    type(event) is Timeout
                    and getrefcount(event) == 2
                    and len(self._timeout_pool) < 128
                ):
                    event._value = None
                    self._timeout_pool.append(event)
                return
        else:
            if callbacks:
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
        if not event._ok and not event._defused:
            # A failed event that nobody handled: crash the simulation,
            # mirroring an unhandled exception in a thread.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event has been processed, and
          return its value (raising if it failed).
        """
        if self.timeline is not None:
            self.timeline.on_run()
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                try:
                    self.step()
                except EmptySchedule:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    ) from None
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError("cannot run() into the past")
            while self._imm or (self._queue and self._queue[0][0] <= horizon):
                self.step()
            self._now = horizon
            return None

        while self._imm or self._queue:
            self.step()
        return None
