"""CPU modelling: pools of cores with pinning, contention and timeslicing.

Compute work in the reproduction (sorting, compaction, request handling,
checksum/serialization overhead) is expressed as *seconds of CPU time* and
billed to a :class:`CpuPool` via :meth:`CpuPool.execute`.  Each core is a
capacity-1 resource; threads either pin to a specific core (the paper pins
every test thread) or run on any core of an allowed set (RocksDB's background
compaction workers run on whichever pinned cores are available).

Long work items are split into timeslices so that a multi-second compaction
job cannot monopolise a core against interactive foreground work — the same
effect an OS scheduler provides.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.sync import AnyOf

__all__ = ["CpuPool"]

#: Default scheduler timeslice in simulated seconds.
DEFAULT_TIMESLICE = 10e-3


class CpuPool:
    """A set of identical CPU cores.

    Parameters
    ----------
    env:
        Simulation environment.
    n_cores:
        Number of cores in the pool.
    timeslice:
        Maximum contiguous occupancy of a core by one work item; longer work
        is split and re-queued, approximating preemptive scheduling.
    name:
        Label used in stats and debugging output.
    """

    def __init__(
        self,
        env: Environment,
        n_cores: int,
        timeslice: float = DEFAULT_TIMESLICE,
        name: str = "cpu",
    ):
        if n_cores < 1:
            raise SimulationError("a CPU pool needs at least one core")
        if timeslice <= 0:
            raise SimulationError("timeslice must be positive")
        self.env = env
        self.n_cores = n_cores
        self.timeslice = timeslice
        self.name = name
        self._cores = [Resource(env, capacity=1) for _ in range(n_cores)]
        #: cumulative busy seconds per core, for utilization reporting
        self.busy_time = [0.0] * n_cores
        self._all_cores = list(range(n_cores))
        #: memoized sorted core lists per distinct ``cores=`` argument —
        #: thread contexts pass the same pinned set on every execute()
        self._allowed_cache: dict[tuple, list[int]] = {}

    # -- acquisition ----------------------------------------------------------
    def _acquire(
        self, allowed: Sequence[int], priority: int
    ) -> Generator:
        """Acquire exactly one core out of ``allowed``; yields (index, request)."""
        cores = self._cores
        if len(allowed) == 1:
            idx = allowed[0]
            req = cores[idx].request(priority)
            yield req
            return idx, req
        if all(not cores[idx]._users for idx in allowed):
            # Every allowed core is idle, so the AnyOf fan-out below would
            # grant all requests and keep the lowest allowed index.  Replay
            # that outcome with identical event-counter timing: the requests
            # grant in creation order, and the wake-up event is scheduled
            # while the first grant is being processed — exactly when the
            # original AnyOf would have fired.
            requests = [cores[idx].request(priority) for idx in allowed]
            woke = self.env.event()
            requests[0].callbacks.append(lambda _evt: woke.succeed())
            yield woke
            keep = allowed[0]
            for idx, req in zip(allowed[1:], requests[1:]):
                cores[idx].release(req)
            return keep, requests[0]
        requests = {idx: cores[idx].request(priority) for idx in allowed}
        yield AnyOf(self.env, list(requests.values()))
        granted = [idx for idx, req in requests.items() if req.processed and req.ok]
        keep = min(granted)
        for idx, req in requests.items():
            if idx != keep:
                cores[idx].release(req)
        return keep, requests[keep]

    def _claim(self, allowed, priority, critpath, resource, op, root, token):
        """``_acquire`` plus blocked-by edge + holder registration.

        Only runs when a critical-path observer is installed; records an
        edge when the claim actually waited (holder snapshot taken at wait
        start — the work the claimant was stuck behind) and registers this
        actor as a holder of ``resource`` until the matching release.
        """
        t0 = self.env.now
        holders = critpath.holders(resource)
        idx, req = yield from self._acquire(allowed, priority)
        now = self.env.now
        if now > t0:
            critpath.record_edge(resource, "cpu", t0, now, op, root, holders)
        critpath.acquire(resource, token)
        return idx, req

    def _check_allowed(self, core: Optional[int], cores: Optional[Sequence[int]]):
        if core is not None and cores is not None:
            raise SimulationError("pass either core= or cores=, not both")
        if core is not None:
            if not 0 <= core < self.n_cores:
                raise SimulationError(f"core index {core} out of range")
            return [core]
        if cores is not None:
            key = tuple(cores)
            cached = self._allowed_cache.get(key)
            if cached is not None:
                return cached
            allowed = sorted(set(cores))
            if not allowed:
                raise SimulationError("cores= must not be empty")
            for idx in allowed:
                if not 0 <= idx < self.n_cores:
                    raise SimulationError(f"core index {idx} out of range")
            self._allowed_cache[key] = allowed
            return allowed
        return self._all_cores

    # -- work ------------------------------------------------------------------
    def execute(
        self,
        seconds: float,
        core: Optional[int] = None,
        cores: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> Generator:
        """Consume ``seconds`` of CPU time on one core (generator).

        ``core=`` pins the work to a single core; ``cores=`` restricts it to a
        set; neither means any core in the pool.  Lower ``priority`` values
        win the queue when cores are contended.

        Work longer than the pool timeslice releases and re-acquires the core
        between slices, so concurrent work items interleave rather than run
        to completion serially.
        """
        if seconds < 0:
            raise SimulationError("cannot execute negative CPU time")
        allowed = self._check_allowed(core, cores)
        tracer = self.env.tracer
        critpath = self.env.critpath
        if critpath is not None:
            resource = f"cpu.{self.name}"
            actor_op, actor_root = critpath.actor()
            token = (
                actor_op if actor_root is None else f"{actor_op}#{actor_root}"
            )
        if tracer is None:
            # Untraced fast path: skip all span bookkeeping.  Acquisition
            # still goes through the queue — a synchronous take would hand
            # the following timeout an earlier event counter than the seed's,
            # reordering same-instant wakeups under contention.
            env = self.env
            cores_ = self._cores
            remaining = float(seconds)
            if remaining == 0.0:
                if critpath is None:
                    idx, req = yield from self._acquire(allowed, priority)
                else:
                    idx, req = yield from self._claim(
                        allowed, priority, critpath, resource,
                        actor_op, actor_root, token,
                    )
                    critpath.release(resource, token)
                cores_[idx].release(req)
                return
            timeslice = self.timeslice
            while remaining > 0:
                if critpath is None:
                    idx, req = yield from self._acquire(allowed, priority)
                else:
                    idx, req = yield from self._claim(
                        allowed, priority, critpath, resource,
                        actor_op, actor_root, token,
                    )
                slice_len = remaining if remaining < timeslice else timeslice
                try:
                    yield env.timeout(slice_len)
                finally:
                    self.busy_time[idx] += slice_len
                    cores_[idx].release(req)
                    if critpath is not None:
                        critpath.release(resource, token)
                remaining -= slice_len
            return
        span = None
        wait = 0.0
        if tracer is not None:
            span = tracer.start(
                f"cpu.{self.name}", "cpu", pool=self.name, run=float(seconds)
            )
        try:
            remaining = float(seconds)
            if remaining == 0.0:
                # Zero-cost work still passes through the queue once so that
                # ordering against other work on the core is preserved.
                t0 = self.env.now
                if critpath is None:
                    idx, req = yield from self._acquire(allowed, priority)
                else:
                    idx, req = yield from self._claim(
                        allowed, priority, critpath, resource,
                        actor_op, actor_root, token,
                    )
                    critpath.release(resource, token)
                wait += self.env.now - t0
                if span is not None:
                    span.lane = f"{self.name}/core{idx}"
                self._cores[idx].release(req)
                return
            while remaining > 0:
                t0 = self.env.now
                if critpath is None:
                    idx, req = yield from self._acquire(allowed, priority)
                else:
                    idx, req = yield from self._claim(
                        allowed, priority, critpath, resource,
                        actor_op, actor_root, token,
                    )
                wait += self.env.now - t0
                if span is not None and span.lane is None:
                    span.lane = f"{self.name}/core{idx}"
                slice_len = min(remaining, self.timeslice)
                try:
                    yield self.env.timeout(slice_len)
                finally:
                    self.busy_time[idx] += slice_len
                    self._cores[idx].release(req)
                    if critpath is not None:
                        critpath.release(resource, token)
                remaining -= slice_len
        finally:
            if span is not None:
                tracer.finish(span, wait=wait, run=float(seconds) - remaining)

    def utilization(self, up_to: Optional[float] = None) -> list[float]:
        """Per-core busy fraction of elapsed simulated time."""
        horizon = self.env.now if up_to is None else up_to
        if horizon <= 0:
            return [0.0] * self.n_cores
        return [min(1.0, busy / horizon) for busy in self.busy_time]

    def total_busy_time(self) -> float:
        """Sum of busy seconds over all cores."""
        return sum(self.busy_time)
