"""Capacity-limited shared resources for the simulation kernel.

Three primitives cover every contention point in the reproduction:

* :class:`Resource` — N identical slots (CPU cores, SSD channels, NVMe queue
  depth).  FIFO by default; :class:`PriorityResource` adds priorities so
  foreground I/O can pre-empt queued background work.
* :class:`Container` — a homogeneous quantity (DRAM bytes, buffer credits).
* :class:`Store` — a queue of discrete items (request queues between the
  client library and the device).

Usage inside a process::

    with resource.request() as req:
        yield req
        yield env.timeout(work)
    # released on scope exit

or without the context manager, calling ``resource.release(req)`` explicitly.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

__all__ = ["Request", "Resource", "PriorityResource", "Container", "Store"]


class Request(Event):
    """An acquisition request against a :class:`Resource`.

    Fires when a slot has been granted.  Works as a context manager that
    releases the slot (or cancels the queued request) on exit.
    """

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self._seq = resource._seq
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self._seq) < (other.priority, other._seq)


class Resource:
    """``capacity`` identical slots granted to requests in FIFO order."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: list[Request] = []
        self._seq = 0

    # -- public -------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot.  The returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot (or cancel a still-queued request)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Cancelling a queued or never-granted request is legal: it
            # happens when a process is interrupted while waiting.
            try:
                self._waiting.remove(request)
                heapq.heapify(self._waiting)
            except ValueError:
                pass

    # -- internal -----------------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        if not self._waiting and len(self._users) < self.capacity:
            # Uncontended: granting directly is observably identical to
            # heappush followed by an immediate heappop of the sole entry
            # (the grant event gets the same schedule counter), but skips
            # the heap churn that dominates uncontended request cost.
            self._users.add(request)
            request.succeed(request)
            return
        heapq.heappush(self._waiting, request)
        self._grant_next()

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = heapq.heappop(self._waiting)
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue orders by ``priority`` (lower first).

    Functionally identical to :class:`Resource` — the base class already
    honours priorities — but kept as a distinct type so call sites document
    their intent.
    """


class Container:
    """A continuous quantity with blocking ``get`` and non-lossy ``put``.

    Used for byte budgets: SoC DRAM for sorting, device write buffers, block
    cache charge accounting.
    """

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[int, float, Event]] = []
        self._putters: list[tuple[int, float, Event]] = []
        self._seq = 0

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would exceed capacity."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        ev = Event(self.env)
        self._seq += 1
        self._putters.append((self._seq, amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        if amount > self.capacity:
            raise SimulationError("get() larger than container capacity would deadlock")
        ev = Event(self.env)
        self._seq += 1
        self._getters.append((self._seq, amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                _seq, amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                _seq, amount, ev = self._getters[0]
                if self._level >= amount:
                    self._getters.pop(0)
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True


class Store:
    """An unbounded (or bounded) FIFO queue of discrete items."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 (or None)")
        self.env = env
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Append ``item``; blocks while the store is at capacity."""
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        """Pop the oldest item; blocks until one is available."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                item, ev = self._putters.pop(0)
                self._items.append(item)
                ev.succeed(None)
                progressed = True
            while self._getters and self._items:
                ev = self._getters.pop(0)
                ev.succeed(self._items.pop(0))
                progressed = True
