"""Deterministic random-number streams.

Every stochastic component of the simulation draws from its own named
sub-stream derived from one master seed, so adding a new consumer never
perturbs the draws seen by existing ones and whole experiments are
bit-reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 over the pair, which keeps the mapping stable across Python
    versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngRegistry:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers share advancing state within a stream.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed derives from ``name``."""
        return RngRegistry(derive_seed(self.master_seed, name))
