"""Lightweight measurement primitives: counters, timers, histograms, series.

These deliberately avoid any third-party dependency so they can be embedded
in every subsystem without import cycles; the benchmark harness formats them
for reporting.
"""

from __future__ import annotations

import bisect
import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Counter",
    "HitRatio",
    "Histogram",
    "Series",
    "TimeSeries",
    "StatsRegistry",
    "nan_to_zero",
    "series_key",
]


def nan_to_zero(value: float) -> float:
    """0.0 for NaN, the value otherwise — for JSON-bound report fields."""
    return 0.0 if isinstance(value, float) and math.isnan(value) else value


class Counter:
    """A monotonically-growing named count/sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only grow; use two counters for +/-")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class HitRatio:
    """Paired hit/miss counters with a derived ratio (caches, filters)."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str):
        self.name = name
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")

    def hit(self, amount: float = 1.0) -> None:
        self.hits.add(amount)

    def miss(self, amount: float = 1.0) -> None:
        self.misses.add(amount)

    @property
    def total(self) -> float:
        return self.hits.value + self.misses.value

    @property
    def ratio(self) -> float:
        """Hit fraction in [0, 1]; NaN before the first lookup."""
        total = self.total
        return self.hits.value / total if total else math.nan

    @property
    def ratio_or_zero(self) -> float:
        """Like :attr:`ratio` but 0.0 before the first lookup.

        Use this anywhere the value lands in JSON or formatted reports:
        NaN is not valid JSON and reads as garbage in tables, while "no
        lookups yet" rendering as a 0% hit rate is the expected shape.
        """
        total = self.total
        return self.hits.value / total if total else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "hits": self.hits.value,
            "misses": self.misses.value,
            "hit_ratio": self.ratio_or_zero,
        }

    def __repr__(self) -> str:
        return f"HitRatio({self.name}: {self.hits.value}/{self.total})"


class Histogram:
    """Streaming histogram with exact or reservoir-bounded percentiles.

    The default mode stores every sample sorted: exact percentiles, one
    float of memory per sample — fine up to a few million samples per run.
    Passing ``max_samples`` switches to Vitter's Algorithm R once that many
    samples have arrived: count/sum/min/max stay exact, percentiles come
    from a uniform reservoir of ``max_samples`` values, and memory stays
    bounded no matter how long the run is (per-op latency at 1M-key scale
    is the consumer).  The reservoir RNG is seeded from the histogram name,
    so two runs recording the same sequence agree bit-for-bit.
    """

    def __init__(self, name: str, max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.max_samples = max_samples
        self._sorted: list[float] = []
        self._dirty = False  # reservoir mode appends unsorted
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._rng = (
            random.Random(zlib.crc32(name.encode())) if max_samples else None
        )

    def record(self, value: float) -> None:
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.max_samples is None:
            bisect.insort(self._sorted, value)
        elif len(self._sorted) < self.max_samples:
            self._sorted.append(value)
            self._dirty = True
        else:
            # Algorithm R: keep each of the n samples with probability k/n.
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._sorted[slot] = value
                self._dirty = True

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def percentile(self, p: float) -> float:
        """Percentile by nearest-rank; ``p`` in [0, 100].

        Exact in the default mode; in reservoir mode, the nearest rank of
        the retained uniform sample.
        """
        if self._dirty:
            self._sorted.sort()
            self._dirty = False
        if not self._sorted:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = max(0, math.ceil(p / 100.0 * len(self._sorted)) - 1)
        return self._sorted[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. queue depth or cumulative bytes over time."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series samples must be non-decreasing in time")
        self.times.append(time)
        self.values.append(value)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def __len__(self) -> int:
        return len(self.times)


class Series:
    """A labeled (time, value) series — one telemetry timeline track.

    Unlike :class:`TimeSeries` (an unlabeled per-component scratch series),
    a :class:`Series` carries a label set (``{"qp": "host-kv"}``) so many
    instances of one metric stay distinguishable in exports, and a canonical
    flat ``key`` (``qp.depth{qp=host-kv}``) that alert rules match against.
    """

    __slots__ = ("name", "labels", "times", "values")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels: dict[str, str] = dict(labels) if labels else {}
        self.times: list[float] = []
        self.values: list[float] = []

    @property
    def key(self) -> str:
        """Canonical flat identity: ``name{label=value,...}`` (sorted)."""
        return series_key(self.name, self.labels)

    def sample(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("series samples must be non-decreasing in time")
        self.times.append(time)
        self.values.append(value)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def decimate(self) -> None:
        """Drop every second sample in place (timeline memory bounding)."""
        self.times = self.times[::2]
        self.values = self.values[::2]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "times": list(self.times),
            "values": [nan_to_zero(v) for v in self.values],
        }

    def __len__(self) -> int:
        return len(self.times)


def series_key(name: str, labels: Optional[dict[str, str]] = None) -> str:
    """The flat series identity alert rules and exports use."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class StatsRegistry:
    """Namespace of counters/histograms/series owned by one component."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._counters: dict[str, Counter] = {}
        self._hit_ratios: dict[str, HitRatio] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = Counter(self._full(name))
            self._counters[name] = c
        return c

    def hit_ratio(self, name: str) -> HitRatio:
        r = self._hit_ratios.get(name)
        if r is None:
            r = HitRatio(self._full(name))
            self._hit_ratios[name] = r
        return r

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(self._full(name))
            self._histograms[name] = h
        return h

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(self._full(name))
            self._series[name] = s
        return s

    def counter_values(self) -> dict[str, float]:
        """Unprefixed counter name -> value (for reports)."""
        return {name: counter.value for name, counter in self._counters.items()}

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all counter values and histogram means."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[self._full(name)] = c.value
        for name, h in self._histograms.items():
            out[self._full(name) + ".mean"] = h.mean
            out[self._full(name) + ".count"] = float(h.count)
        return out

    def as_dict(self) -> dict[str, dict]:
        """Structured, JSON-safe view for results files and metrics export.

        Unlike :meth:`snapshot`, histograms carry their full percentile
        summary (p50/p95/p99, not just the mean) and hit ratios appear as
        hit/miss pairs with a NaN-free ratio.  Histogram means of empty
        histograms are reported as 0.0 so the output is always valid JSON.
        """
        histograms = {}
        for name, h in self._histograms.items():
            summary = h.summary()
            histograms[name] = {
                key: nan_to_zero(value) for key, value in summary.items()
            }
        return {
            "counters": {
                name: c.value for name, c in self._counters.items()
            },
            "hit_ratios": {
                name: r.summary() for name, r in self._hit_ratios.items()
            },
            "histograms": histograms,
            "series": {
                name: {"samples": float(len(s)), "last": s.last()}
                for name, s in self._series.items()
            },
        }
