"""Lightweight measurement primitives: counters, timers, histograms, series.

These deliberately avoid any third-party dependency so they can be embedded
in every subsystem without import cycles; the benchmark harness formats them
for reporting.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Counter",
    "HitRatio",
    "Histogram",
    "TimeSeries",
    "StatsRegistry",
    "nan_to_zero",
]


def nan_to_zero(value: float) -> float:
    """0.0 for NaN, the value otherwise — for JSON-bound report fields."""
    return 0.0 if isinstance(value, float) and math.isnan(value) else value


class Counter:
    """A monotonically-growing named count/sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only grow; use two counters for +/-")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class HitRatio:
    """Paired hit/miss counters with a derived ratio (caches, filters)."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str):
        self.name = name
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")

    def hit(self, amount: float = 1.0) -> None:
        self.hits.add(amount)

    def miss(self, amount: float = 1.0) -> None:
        self.misses.add(amount)

    @property
    def total(self) -> float:
        return self.hits.value + self.misses.value

    @property
    def ratio(self) -> float:
        """Hit fraction in [0, 1]; NaN before the first lookup."""
        total = self.total
        return self.hits.value / total if total else math.nan

    @property
    def ratio_or_zero(self) -> float:
        """Like :attr:`ratio` but 0.0 before the first lookup.

        Use this anywhere the value lands in JSON or formatted reports:
        NaN is not valid JSON and reads as garbage in tables, while "no
        lookups yet" rendering as a 0% hit rate is the expected shape.
        """
        total = self.total
        return self.hits.value / total if total else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "hits": self.hits.value,
            "misses": self.misses.value,
            "hit_ratio": self.ratio_or_zero,
        }

    def __repr__(self) -> str:
        return f"HitRatio({self.name}: {self.hits.value}/{self.total})"


class Histogram:
    """Streaming histogram with exact percentiles (stores samples sorted).

    Suitable for the scale of this reproduction (up to a few million samples
    per run); memory is one float per sample.
    """

    def __init__(self, name: str):
        self.name = name
        self._sorted: list[float] = []
        self._sum = 0.0

    def record(self, value: float) -> None:
        bisect.insort(self._sorted, value)
        self._sum += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else math.nan

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else math.nan

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else math.nan

    def percentile(self, p: float) -> float:
        """Exact percentile by nearest-rank; ``p`` in [0, 100]."""
        if not self._sorted:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = max(0, math.ceil(p / 100.0 * len(self._sorted)) - 1)
        return self._sorted[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. queue depth or cumulative bytes over time."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series samples must be non-decreasing in time")
        self.times.append(time)
        self.values.append(value)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def __len__(self) -> int:
        return len(self.times)


class StatsRegistry:
    """Namespace of counters/histograms/series owned by one component."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._counters: dict[str, Counter] = {}
        self._hit_ratios: dict[str, HitRatio] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = Counter(self._full(name))
            self._counters[name] = c
        return c

    def hit_ratio(self, name: str) -> HitRatio:
        r = self._hit_ratios.get(name)
        if r is None:
            r = HitRatio(self._full(name))
            self._hit_ratios[name] = r
        return r

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(self._full(name))
            self._histograms[name] = h
        return h

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(self._full(name))
            self._series[name] = s
        return s

    def counter_values(self) -> dict[str, float]:
        """Unprefixed counter name -> value (for reports)."""
        return {name: counter.value for name, counter in self._counters.items()}

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all counter values and histogram means."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[self._full(name)] = c.value
        for name, h in self._histograms.items():
            out[self._full(name) + ".mean"] = h.mean
            out[self._full(name) + ".count"] = float(h.count)
        return out

    def as_dict(self) -> dict[str, dict]:
        """Structured, JSON-safe view for results files and metrics export.

        Unlike :meth:`snapshot`, histograms carry their full percentile
        summary (p50/p95/p99, not just the mean) and hit ratios appear as
        hit/miss pairs with a NaN-free ratio.  Histogram means of empty
        histograms are reported as 0.0 so the output is always valid JSON.
        """
        histograms = {}
        for name, h in self._histograms.items():
            summary = h.summary()
            histograms[name] = {
                key: nan_to_zero(value) for key, value in summary.items()
            }
        return {
            "counters": {
                name: c.value for name, c in self._counters.items()
            },
            "hit_ratios": {
                name: r.summary() for name, r in self._hit_ratios.items()
            },
            "histograms": histograms,
            "series": {
                name: {"samples": float(len(s)), "last": s.last()}
                for name, s in self._series.items()
            },
        }
