"""Composite condition events and producer/consumer queues.

:class:`AllOf` / :class:`AnyOf` wait for a set of events; :class:`BoundedQueue`
connects pipeline stages (e.g. the compaction engine's SORTED_VALUES writer
feeding the PIDX builder) with backpressure: a full queue blocks the producer,
an empty queue blocks the consumer.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, PENDING

__all__ = ["AllOf", "AnyOf", "BoundedQueue"]


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: Environment, events: list[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if not isinstance(ev, Event):
                raise SimulationError(f"condition requires events, got {ev!r}")
            if ev.env is not env:
                raise SimulationError("all events must share one environment")
        pending = [ev for ev in self._events if not ev.processed]
        processed = [ev for ev in self._events if ev.processed]
        # Count all pending events before observing processed ones so that an
        # early already-processed event cannot see a transiently-zero count.
        self._remaining = len(pending)
        for ev in pending:
            ev.callbacks.append(self._check)
        for ev in processed:
            self._observe_processed(ev)
        if self._state == PENDING and self._remaining == 0:
            self._finalize()

    # subclass hooks ---------------------------------------------------------
    def _observe_processed(self, ev: Event) -> None:
        raise NotImplementedError

    def _finalize(self) -> None:
        raise NotImplementedError

    def _check(self, ev: Event) -> None:
        if self._state != PENDING:
            if not ev._ok:
                ev._defused = True
            return
        self._remaining -= 1
        self._observe_processed(ev)

    def _collect_values(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Succeeds with a dict mapping each event to its value.  Fails as soon as
    any constituent fails (with that exception); remaining failures are
    defused.
    """

    __slots__ = ()

    def _observe_processed(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            if self._state == PENDING:
                self.fail(ev._value)
            return
        if self._remaining == 0 and self._state == PENDING:
            self._finalize()

    def _finalize(self) -> None:
        self.succeed(self._collect_values())


class BoundedQueue:
    """A FIFO channel of bounded capacity between simulation processes.

    ``put`` blocks (in simulated time) while the queue is full, ``get``
    while it is empty, so a fast producer cannot run unboundedly ahead of
    its consumer — the buffer models a fixed number of in-flight items
    (e.g. stripe groups) held in DRAM.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise SimulationError("queue capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        #: resource label for blocked-by edges (critical-path attribution)
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Generator:
        """Enqueue ``item``; waits while the queue is at capacity."""
        while len(self._items) >= self.capacity:
            slot = Event(self.env)
            self._putters.append(slot)
            critpath = self.env.critpath
            begun = critpath.wait_begin(self.name) if critpath is not None else None
            tracer = self.env.tracer
            if tracer is None:
                yield slot
            else:
                # The blocked wait is backpressure from the consumer; record
                # it as queue time on the producer's span tree.
                with tracer.span("queue.put_wait", "queue", capacity=self.capacity):
                    yield slot
            if begun is not None:
                critpath.wait_end(self.name, "queue", begun)
        self._items.append(item)
        if self._getters:
            self._getters.popleft().succeed()

    def get(self) -> Generator:
        """Dequeue the oldest item; waits while the queue is empty."""
        while not self._items:
            ready = Event(self.env)
            self._getters.append(ready)
            critpath = self.env.critpath
            begun = critpath.wait_begin(self.name) if critpath is not None else None
            tracer = self.env.tracer
            if tracer is None:
                yield ready
            else:
                with tracer.span("queue.get_wait", "queue", capacity=self.capacity):
                    yield ready
            if begun is not None:
                critpath.wait_end(self.name, "queue", begun)
        item = self._items.popleft()
        if self._putters:
            self._putters.popleft().succeed()
        return item


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires.

    Succeeds with a dict of the events processed so far and their values.
    Fails if the first event to fire failed.  An empty event list succeeds
    immediately (vacuous truth, matching SimPy).
    """

    __slots__ = ()

    def _observe_processed(self, ev: Event) -> None:
        if self._state != PENDING:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._finalize()

    def _finalize(self) -> None:
        self.succeed(self._collect_values())
