"""Device-controller substrate: the SoC board, its DRAM budget and SPDK path."""

from repro.soc.board import SocBoard, SocSpec
from repro.soc.dram import DramBudget
from repro.soc.spdk import SpdkDriver

__all__ = ["SocBoard", "SocSpec", "DramBudget", "SpdkDriver"]
