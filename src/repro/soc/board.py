"""The KV-CSD SoC board: ARM cores, DRAM, and the SPDK path to the SSD.

Mirrors the paper's Fidus Sidewinder-100 setup (Table I): a quad-core ARM
Cortex-A53 with 8 GB DDR4 running the device firmware, connected to an NVMe
ZNS SSD.  The board is deliberately *weaker* than the host — the point the
evaluation makes is that even slow device cores win by being asynchronous
and close to the data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.host.threads import ThreadCtx
from repro.nvme.controller import NvmeController
from repro.nvme.queues import QueuePair
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.soc.dram import DramBudget
from repro.soc.spdk import SpdkDriver
from repro.ssd.zns import ZnsSsd
from repro.units import GiB

__all__ = ["SocSpec", "SocBoard"]


@dataclass(frozen=True)
class SocSpec:
    """Static parameters of the SoC.

    ``arm_slowdown`` scales CPU work relative to a host core: the A53 runs
    at a fraction of an EPYC core's per-byte throughput on sort/merge-type
    work (in-order, small caches).  Firmware CPU costs are specified in
    host-core seconds and multiplied by this factor when charged here.
    """

    n_cores: int = 4
    dram_bytes: int = 8 * GiB
    arm_slowdown: float = 3.0
    timeslice: float = 10e-3
    nvme_queue_depth: int = 64
    #: DRAM the firmware may use for one sort run (leaves room for buffers);
    #: scaled down together with workloads in benchmarks.
    sort_budget_bytes: int = 4 * GiB
    #: key-range shards the compaction sort is partitioned into (clamped to
    #: ``n_cores`` at use); 1 = the serial single-process compaction path.
    compaction_shards: int = 1
    #: SoC DRAM carved out for the device-side LRU block cache; 0 disables
    #: caching (the paper's "no device cache" configuration).
    block_cache_bytes: int = 0
    #: worker processes the query scheduler fans commands out to (clamped to
    #: ``n_cores`` at use); 0 = the serial in-caller query path.
    query_workers: int = 0
    #: bits per key for per-PIDX/SIDX-block bloom filters built during
    #: compaction and index builds; 0 disables blooms entirely.
    bloom_bits_per_key: int = 0
    #: admission-queue depth of the query scheduler (backpressure bound).
    query_queue_depth: int = 64
    #: route all on-flash metadata through the durable v2 codec (checksummed
    #: frames, persisted blooms, A/B checkpoint zones); off keeps the legacy
    #: v1 record stream byte-identical.
    durable_meta: bool = False

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("SoC needs at least one core")
        if self.arm_slowdown <= 0:
            raise SimulationError("arm_slowdown must be positive")
        if not 0 < self.sort_budget_bytes <= self.dram_bytes:
            raise SimulationError("sort budget must fit in DRAM")
        if self.compaction_shards < 1:
            raise SimulationError("compaction needs at least one shard")
        if self.block_cache_bytes < 0:
            raise SimulationError("block cache size cannot be negative")
        if self.sort_budget_bytes + self.block_cache_bytes > self.dram_bytes:
            raise SimulationError("sort budget + block cache must fit in DRAM")
        if self.query_workers < 0:
            raise SimulationError("query worker count cannot be negative")
        if self.bloom_bits_per_key < 0:
            raise SimulationError("bloom bits per key cannot be negative")
        if self.query_queue_depth < 1:
            raise SimulationError("query queue depth must be positive")


class SocBoard:
    """Runtime resources of the SoC."""

    def __init__(self, env: Environment, ssd: ZnsSsd, spec: SocSpec | None = None):
        self.env = env
        self.spec = spec or SocSpec()
        self.ssd = ssd
        self.cpu = CpuPool(
            env, self.spec.n_cores, timeslice=self.spec.timeslice, name="soc"
        )
        self.dram = DramBudget(env, self.spec.dram_bytes)
        controller = NvmeController(env, ssd)
        self.qp = QueuePair(env, controller, depth=self.spec.nvme_queue_depth)
        self.spdk = SpdkDriver(self.qp)

    def firmware_ctx(self, priority: int = 0) -> ThreadCtx:
        """A context for firmware work floating over all SoC cores."""
        return ThreadCtx(cpu=self.cpu, priority=priority)

    def scale_cpu(self, host_seconds: float) -> float:
        """Convert host-core CPU seconds into SoC-core seconds."""
        return host_seconds * self.spec.arm_slowdown

    def introspect(self) -> dict:
        """Core/DRAM/queue state for device snapshots (no simulation events)."""
        return {
            "n_cores": self.spec.n_cores,
            "arm_slowdown": self.spec.arm_slowdown,
            "core_busy_seconds": list(self.cpu.busy_time),
            "sort_budget_bytes": self.spec.sort_budget_bytes,
            "block_cache_bytes": self.spec.block_cache_bytes,
            "compaction_shards": self.spec.compaction_shards,
            "query_workers": self.spec.query_workers,
            "bloom_bits_per_key": self.spec.bloom_bits_per_key,
            "durable_meta": self.spec.durable_meta,
            "dram": self.dram.introspect(),
            "nvme_queue": self.qp.introspect(),
        }
