"""SoC DRAM budget accounting.

The device's sort and buffer paths must fit in the SoC's 8 GB DRAM (Table I
of the paper); the external merge sort sizes its runs off this budget.  A
thin wrapper over :class:`repro.sim.resources.Container` with reservation
semantics.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Container

__all__ = ["DramBudget"]


class DramBudget:
    """Byte budget with blocking reserve/release."""

    def __init__(self, env: Environment, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise SimulationError("DRAM capacity must be positive")
        self.env = env
        self.capacity = capacity_bytes
        self._container = Container(env, capacity=capacity_bytes, init=capacity_bytes)

    @property
    def available(self) -> float:
        """Bytes currently unreserved."""
        return self._container.level

    def reserve(self, nbytes: int) -> Generator:
        """Block until ``nbytes`` can be reserved."""
        if nbytes > self.capacity:
            raise SimulationError(
                f"reservation of {nbytes} exceeds DRAM capacity {self.capacity}"
            )
        critpath = self.env.critpath
        if critpath is None:
            yield self._container.get(nbytes)
            return
        begun = critpath.wait_begin("soc.dram")
        yield self._container.get(nbytes)
        critpath.wait_end("soc.dram", "dram", begun)
        critpath.acquire("soc.dram", critpath.token())

    def release(self, nbytes: int) -> Generator:
        """Return ``nbytes`` to the budget."""
        critpath = self.env.critpath
        if critpath is not None:
            # Tolerant of a different op releasing than reserved (e.g. bloom
            # filters freed at keyspace delete): release() drops the entry
            # only when the token matches a live hold.
            critpath.release("soc.dram", critpath.token())
        yield self._container.put(nbytes)

    def introspect(self) -> dict:
        """Budget occupancy for device snapshots (no simulation events)."""
        return {
            "capacity_bytes": self.capacity,
            "available_bytes": self.available,
            "reserved_bytes": self.capacity - self.available,
        }

    def metric_gauges(self) -> dict[str, Callable[[], float]]:
        """Instantaneous gauges for MetricsHub/timeline sampling."""
        return {
            "dram.reserved_bytes": lambda: float(self.capacity - self.available),
            "dram.budget_used_frac": lambda: (
                (self.capacity - self.available) / self.capacity
            ),
        }
