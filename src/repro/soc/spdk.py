"""SPDK-style userspace driver path from the SoC to its backing SSD.

KV-CSD's on-SoC store is "a custom userspace block device driver using
Intel's SPDK" — commands go straight from the store to the NVMe queues with
no kernel involvement.  The model charges a small polled-mode CPU cost per
command on the issuing SoC core and forwards to the NVMe queue pair.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.host.threads import ThreadCtx
from repro.nvme.commands import Completion, NvmeCommand
from repro.nvme.queues import QueuePair
from repro.units import usec

__all__ = ["SpdkDriver"]

#: CPU cost of building + submitting + polling one NVMe command from
#: userspace.  An order of magnitude below the kernel block layer path.
SPDK_PER_COMMAND_CPU = usec(0.6)


class SpdkDriver:
    """Kernel-bypass command submission on behalf of SoC firmware threads."""

    def __init__(self, qp: QueuePair, per_command_cpu: float = SPDK_PER_COMMAND_CPU):
        self.qp = qp
        self.per_command_cpu = per_command_cpu

    def submit(self, command: NvmeCommand, ctx: ThreadCtx) -> Generator:
        """Execute ``command``; returns its :class:`Completion`."""
        yield from ctx.execute(self.per_command_cpu)
        completion: Completion = yield from self.qp.submit(command)
        return completion
