"""Storage substrate: ZNS and conventional SSD models.

Both devices are functional (bytes round-trip exactly) and billable (every
operation occupies simulated NAND-channel time), so higher layers measure
real contention, amplification, and bandwidth effects.
"""

from repro.ssd.conventional import ConventionalSsd
from repro.ssd.faults import FaultPlan, MediaError
from repro.ssd.ftl import Ftl, GcWork, PageAllocation
from repro.ssd.geometry import SsdGeometry
from repro.ssd.latency import NandLatencyModel
from repro.ssd.metrics import IoStats
from repro.ssd.zns import ZnsSsd
from repro.ssd.zone import Zone, ZoneState

__all__ = [
    "SsdGeometry",
    "NandLatencyModel",
    "IoStats",
    "Zone",
    "ZoneState",
    "ZnsSsd",
    "Ftl",
    "GcWork",
    "PageAllocation",
    "ConventionalSsd",
    "FaultPlan",
    "MediaError",
]
