"""Functional model of a conventional (block-interface) NVMe SSD.

This device backs the ext4 filesystem the RocksDB baseline runs on.  It
exposes byte-addressed reads/writes at logical-block (page) granularity; the
embedded page-mapped FTL (:mod:`repro.ssd.ftl`) handles overwrites and
garbage collection, whose relocation traffic is billed to the channels just
like host I/O — the "block interface tax" the ZNS literature (and the
paper's Section III) describes.

Data round-trips for real: page contents live in a dict keyed by logical
page number.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.errors import InvalidAddressError, StorageError
from repro.obs.trace import trace_span
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.sync import AllOf
from repro.ssd.ftl import Ftl, GcWork
from repro.ssd.geometry import SsdGeometry
from repro.ssd.latency import NandLatencyModel
from repro.ssd.metrics import IoStats

import numpy as np

__all__ = ["ConventionalSsd"]

#: Fraction of raw capacity hidden as over-provisioning space.
DEFAULT_OVERPROVISIONING = 0.125


class ConventionalSsd:
    """A page-mapped, garbage-collected block SSD."""

    def __init__(
        self,
        env: Environment,
        geometry: SsdGeometry | None = None,
        latency: NandLatencyModel | None = None,
        overprovisioning: float = DEFAULT_OVERPROVISIONING,
        name: str = "nvme0",
    ):
        if not 0.02 <= overprovisioning < 1.0:
            raise StorageError("overprovisioning fraction must be in [0.02, 1)")
        self.env = env
        self.geometry = geometry or SsdGeometry()
        self.latency = latency or NandLatencyModel()
        self.name = name
        self.page_size = self.geometry.logical_block_size

        n_phys_pages = self.geometry.capacity // self.page_size
        n_blocks = n_phys_pages // self.geometry.pages_per_block
        n_blocks -= n_blocks % self.geometry.n_channels  # even striping
        n_phys_pages = n_blocks * self.geometry.pages_per_block
        n_logical = int(n_phys_pages / (1.0 + overprovisioning))
        # Leave the FTL enough reserve headroom.
        reserve = 2
        max_logical = n_phys_pages - 2 * reserve * self.geometry.pages_per_block * (
            self.geometry.n_channels
        )
        n_logical = min(n_logical, max_logical)
        if n_logical <= 0:
            raise StorageError("geometry too small for a conventional SSD")

        self.ftl = Ftl(
            n_logical_pages=n_logical,
            n_blocks=n_blocks,
            pages_per_block=self.geometry.pages_per_block,
            n_channels=self.geometry.n_channels,
            gc_reserve_blocks=reserve,
        )
        self._channels = [
            Resource(env, capacity=1) for _ in range(self.geometry.n_channels)
        ]
        self._pages: dict[int, bytes] = {}
        self.stats = IoStats()
        #: optional fault-injection plan (see :mod:`repro.ssd.faults`)
        self.faults = None

    # -- helpers ---------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Logical bytes addressable by the host."""
        return self.ftl.n_logical_pages * self.page_size

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise InvalidAddressError(
                f"{self.name}: range [{offset}, {offset + length}) outside "
                f"capacity {self.capacity}"
            )
        if offset % self.page_size or length % self.page_size:
            raise InvalidAddressError(
                f"{self.name}: I/O must be {self.page_size}-byte aligned"
            )

    def _occupy_channel(
        self, channel: int, seconds: float, op: str = "io", nbytes: int = 0
    ) -> Generator:
        res = self._channels[channel]
        with trace_span(
            self.env,
            f"nand.{op}",
            "flash",
            lane=f"{self.name}/ch{channel}",
            busy=seconds,
            bytes=nbytes,
        ) as span:
            with res.request() as req:
                t0 = self.env.now
                yield req
                if span is not None:
                    span.args["wait"] = self.env.now - t0
                yield self.env.timeout(seconds)
        self.stats.record_channel_busy(channel, seconds)

    def _charge_per_channel(self, channel_bytes: dict[int, int], write: bool) -> Generator:
        """Charge the channels concurrently for a batched transfer."""
        procs = []
        for channel, nbytes in sorted(channel_bytes.items()):
            seconds = (
                self.latency.write_time(nbytes) if write else self.latency.read_time(nbytes)
            )
            op = "write" if write else "read"
            procs.append(
                self.env.process(self._occupy_channel(channel, seconds, op, nbytes))
            )
        if procs:
            yield AllOf(self.env, procs)

    def _charge_gc(self, gc_events: list[GcWork]) -> Generator:
        for work in gc_events:
            moved_bytes = work.moved_pages * self.page_size
            if moved_bytes:
                seconds = self.latency.read_time(moved_bytes) + self.latency.write_time(
                    moved_bytes
                )
                yield from self._occupy_channel(work.channel, seconds, "gc", moved_bytes)
                self.stats.record_gc_copy(moved_bytes)
                self.stats.record_read(moved_bytes)
                self.stats.record_write(moved_bytes)
            for _ in range(work.erased_blocks):
                yield from self._occupy_channel(
                    work.channel, self.latency.erase_time(), "erase"
                )
                self.stats.record_erase()

    # -- operations (simulation generators) --------------------------------------
    def write(self, offset: int, data: bytes) -> Generator:
        """Write page-aligned ``data`` at byte ``offset``."""
        self._check_range(offset, len(data))
        if self.faults is not None:
            self.faults.check_write()
        if not data:
            return
        n_pages = len(data) // self.page_size
        first_lpn = offset // self.page_size
        lpns = np.arange(first_lpn, first_lpn + n_pages)
        allocation, gc_events = self.ftl.write_pages(lpns)
        yield from self._charge_gc(gc_events)
        channel_bytes: dict[int, int] = {}
        for ch in allocation.channels:
            channel_bytes[int(ch)] = channel_bytes.get(int(ch), 0) + self.page_size
        yield from self._charge_per_channel(channel_bytes, write=True)
        for i, lpn in enumerate(lpns):
            self._pages[int(lpn)] = data[i * self.page_size : (i + 1) * self.page_size]
        self.stats.record_write(len(data))

    def read(self, offset: int, length: int) -> Generator:
        """Read ``length`` page-aligned bytes at ``offset``; returns bytes.

        Unwritten pages read back as zeroes (standard block-device
        semantics).
        """
        self._check_range(offset, length)
        if self.faults is not None:
            self.faults.check_read()
        if length == 0:
            return b""
        n_pages = length // self.page_size
        first_lpn = offset // self.page_size
        lpns = np.arange(first_lpn, first_lpn + n_pages)
        channels = self.ftl.read_channels(lpns)
        channel_bytes: dict[int, int] = {}
        for ch in channels:
            channel_bytes[int(ch)] = channel_bytes.get(int(ch), 0) + self.page_size
        yield from self._charge_per_channel(channel_bytes, write=False)
        zero = b"\x00" * self.page_size
        chunks = [self._pages.get(int(lpn), zero) for lpn in lpns]
        self.stats.record_read(length)
        return b"".join(chunks)

    def trim(self, offset: int, length: int) -> Generator:
        """Discard a page-aligned range (host TRIM); near-free for the device."""
        self._check_range(offset, length)
        n_pages = length // self.page_size
        first_lpn = offset // self.page_size
        lpns = np.arange(first_lpn, first_lpn + n_pages)
        self.ftl.trim_pages(lpns)
        for lpn in lpns:
            self._pages.pop(int(lpn), None)
        with trace_span(self.env, "nand.trim", "flash", busy=self.latency.command_overhead):
            yield self.env.timeout(self.latency.command_overhead)
