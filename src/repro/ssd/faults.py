"""Fault injection for storage devices.

Lets tests and resilience experiments make specific device operations fail
(media errors, transient channel faults) and verify that every layer above
— NVMe controller, filesystem, both key-value stores — surfaces or contains
the failure instead of corrupting state.

A :class:`FaultPlan` is armed on a device; each matching operation consumes
one scheduled fault and raises :class:`~repro.errors.StorageError` (which
the NVMe controller converts into an error completion, and the queue pair
into :class:`~repro.errors.NvmeError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError

__all__ = ["FaultPlan", "MediaError"]


class MediaError(StorageError):
    """An injected unrecoverable media error."""


@dataclass
class FaultPlan:
    """Schedule of operation failures.

    ``fail_reads`` / ``fail_writes``: how many upcoming operations of that
    kind fail (each failure decrements the budget).  ``after`` skips that
    many successful operations first — e.g. "the 3rd read fails".
    """

    fail_reads: int = 0
    fail_writes: int = 0
    after_reads: int = 0
    after_writes: int = 0
    #: record of injected failures, for assertions
    injected: list[str] = field(default_factory=list)

    def check_read(self) -> None:
        if self.after_reads > 0:
            self.after_reads -= 1
            return
        if self.fail_reads > 0:
            self.fail_reads -= 1
            self.injected.append("read")
            raise MediaError("injected read fault")

    def check_write(self) -> None:
        if self.after_writes > 0:
            self.after_writes -= 1
            return
        if self.fail_writes > 0:
            self.fail_writes -= 1
            self.injected.append("write")
            raise MediaError("injected write fault")

    @property
    def exhausted(self) -> bool:
        return self.fail_reads == 0 and self.fail_writes == 0

    @property
    def trips_read(self) -> int:
        """Read faults injected so far."""
        return self.injected.count("read")

    @property
    def trips_write(self) -> int:
        """Write faults injected so far."""
        return self.injected.count("write")

    def introspect(self) -> dict:
        """Plan state + trip counts for device snapshots and metrics."""
        return {
            "fail_reads_remaining": self.fail_reads,
            "fail_writes_remaining": self.fail_writes,
            "after_reads": self.after_reads,
            "after_writes": self.after_writes,
            "trips_read": self.trips_read,
            "trips_write": self.trips_write,
            "exhausted": self.exhausted,
        }
