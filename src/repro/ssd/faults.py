"""Fault injection for storage devices.

Lets tests and resilience experiments make specific device operations fail
(media errors, transient channel faults) and verify that every layer above
— NVMe controller, filesystem, both key-value stores — surfaces or contains
the failure instead of corrupting state.

A :class:`FaultPlan` is armed on a device; each matching operation consumes
one scheduled fault and raises :class:`~repro.errors.StorageError` (which
the NVMe controller converts into an error completion, and the queue pair
into :class:`~repro.errors.NvmeError`).

Beyond media errors, a plan can *cut power*:

* ``cut_at_event`` — after the Nth matching journal event (wire
  :meth:`FaultPlan.observe_event` to ``EventJournal.on_record``), the plan
  raises :class:`PowerCut`, aborting the simulation at an exact, replayable
  journal sequence number.
* ``torn_after_writes`` — the Nth SSD append is *torn*: only a prefix of
  the data reaches flash before :class:`PowerCut` fires, modelling a
  mid-write power loss (the classic torn metadata append).

Once a cut fires the device is dead: every subsequent read/write raises
:class:`PowerCut`, so no post-cut progress can masquerade as durable.
:class:`PowerCut` is deliberately **not** a :class:`~repro.errors.ReproError`
— the command dispatcher must not convert it into an error completion; it
propagates out of ``env.run()`` so the crash harness can snapshot flash
state and remount into a fresh environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StorageError

__all__ = ["FaultPlan", "MediaError", "PowerCut"]


class MediaError(StorageError):
    """An injected unrecoverable media error."""


class PowerCut(Exception):
    """The simulated device lost power.

    Not a :class:`~repro.errors.ReproError` on purpose: no layer is allowed
    to "handle" a power loss — it unwinds the whole simulation run.
    """


@dataclass
class FaultPlan:
    """Schedule of operation failures.

    ``fail_reads`` / ``fail_writes``: how many upcoming operations of that
    kind fail (each failure decrements the budget).  ``after`` skips that
    many successful operations first — e.g. "the 3rd read fails".

    ``cut_at_event`` cuts power at the Nth journal event the plan observes
    (optionally only counting events of ``cut_event_type``);
    ``torn_after_writes`` cuts power mid-way through the Nth append,
    leaving ``torn_keep_fraction`` of its bytes on flash.
    """

    fail_reads: int = 0
    fail_writes: int = 0
    after_reads: int = 0
    after_writes: int = 0
    #: cut power at the Nth matching journal event (1 = the next one).
    cut_at_event: Optional[int] = None
    #: only journal events of this type count toward ``cut_at_event``.
    cut_event_type: Optional[str] = None
    #: tear the Nth SSD append (1 = the next one): a prefix lands, then cut.
    torn_after_writes: Optional[int] = None
    #: fraction of a torn append's bytes that reach flash (rounded down).
    torn_keep_fraction: float = 0.5
    #: set once a power cut fired; all subsequent I/O raises PowerCut.
    power_cut: bool = False
    #: record of injected failures, for assertions
    injected: list[str] = field(default_factory=list)

    def check_read(self) -> None:
        if self.power_cut:
            raise PowerCut("device is powered off")
        if self.after_reads > 0:
            self.after_reads -= 1
            return
        if self.fail_reads > 0:
            self.fail_reads -= 1
            self.injected.append("read")
            raise MediaError("injected read fault")

    def check_write(self) -> None:
        if self.power_cut:
            raise PowerCut("device is powered off")
        if self.after_writes > 0:
            self.after_writes -= 1
            return
        if self.fail_writes > 0:
            self.fail_writes -= 1
            self.injected.append("write")
            raise MediaError("injected write fault")

    def observe_event(self, event) -> None:
        """Journal observer: cut power at the armed event sequence.

        Wire onto ``EventJournal.on_record``.  Counts matching events down;
        when the count reaches zero the plan flips to ``power_cut`` and
        raises :class:`PowerCut` from inside whatever simulation step
        emitted the event.
        """
        if self.power_cut or self.cut_at_event is None:
            return
        if self.cut_event_type is not None and event.type != self.cut_event_type:
            return
        self.cut_at_event -= 1
        if self.cut_at_event <= 0:
            self.power_cut = True
            self.injected.append("power_cut")
            raise PowerCut(
                f"power cut at journal event #{event.seq} ({event.type})"
            )

    def check_torn_write(self, nbytes: int) -> Optional[int]:
        """How many bytes of this append survive, or ``None`` for all.

        Returns a byte count strictly less than ``nbytes`` when this append
        is the armed torn write; the caller must persist exactly that prefix
        and then raise :class:`PowerCut`.  Flips ``power_cut`` so no later
        operation succeeds.
        """
        if self.power_cut or self.torn_after_writes is None:
            return None
        self.torn_after_writes -= 1
        if self.torn_after_writes > 0:
            return None
        self.power_cut = True
        self.injected.append("torn_write")
        keep = int(nbytes * self.torn_keep_fraction)
        return max(0, min(keep, nbytes - 1)) if nbytes else 0

    @property
    def exhausted(self) -> bool:
        return self.fail_reads == 0 and self.fail_writes == 0

    @property
    def trips_read(self) -> int:
        """Read faults injected so far."""
        return self.injected.count("read")

    @property
    def trips_write(self) -> int:
        """Write faults injected so far."""
        return self.injected.count("write")

    def introspect(self) -> dict:
        """Plan state + trip counts for device snapshots and metrics."""
        return {
            "fail_reads_remaining": self.fail_reads,
            "fail_writes_remaining": self.fail_writes,
            "after_reads": self.after_reads,
            "after_writes": self.after_writes,
            "trips_read": self.trips_read,
            "trips_write": self.trips_write,
            "exhausted": self.exhausted,
            "cut_at_event": self.cut_at_event,
            "cut_event_type": self.cut_event_type,
            "torn_after_writes": self.torn_after_writes,
            "power_cut": self.power_cut,
        }
