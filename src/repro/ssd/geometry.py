"""SSD geometry description.

The paper's device is a 15 TB E1.L NVMe ZNS SSD.  We keep the structural
parameters (channel count, zone size, logical-block size) configurable and
default to a scaled-down geometry that a Python simulation can exercise in
seconds; capacity scaling is recorded per-experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.units import KiB, MiB

__all__ = ["SsdGeometry"]


@dataclass(frozen=True)
class SsdGeometry:
    """Static layout of an SSD.

    Attributes
    ----------
    n_channels:
        Independent NAND channels; device bandwidth scales with this as long
        as I/O is spread across channels (KV-CSD's zone clusters exist
        exactly to exploit it).
    n_zones:
        Number of equal-sized zones exposed by a ZNS drive (for the
        conventional drive this is the number of NAND erase super-blocks).
    zone_size:
        Zone capacity in bytes.  Zones are the ZNS write/reset granularity.
    logical_block_size:
        Smallest addressable unit (the classic 4 KiB LBA).
    pages_per_block:
        NAND pages per erase block (used by the conventional drive's FTL for
        garbage-collection bookkeeping).
    """

    n_channels: int = 8
    n_zones: int = 256
    zone_size: int = 16 * MiB
    logical_block_size: int = 4 * KiB
    pages_per_block: int = 256

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise StorageError("SSD needs at least one channel")
        if self.n_zones < 1:
            raise StorageError("SSD needs at least one zone")
        if self.logical_block_size < 512:
            raise StorageError("logical block size must be >= 512 bytes")
        if self.zone_size % self.logical_block_size != 0:
            raise StorageError("zone size must be a multiple of the block size")
        if self.n_zones % self.n_channels != 0:
            raise StorageError(
                "n_zones must be a multiple of n_channels so zones stripe "
                "evenly across channels"
            )

    @property
    def capacity(self) -> int:
        """Total usable bytes."""
        return self.n_zones * self.zone_size

    @property
    def blocks_per_zone(self) -> int:
        """Logical blocks per zone."""
        return self.zone_size // self.logical_block_size

    def channel_of_zone(self, zone_id: int) -> int:
        """Channel that services a zone (static round-robin mapping)."""
        if not 0 <= zone_id < self.n_zones:
            raise StorageError(f"zone id {zone_id} out of range")
        return zone_id % self.n_channels
