"""NAND and channel timing model.

Per-operation service time seen by one channel::

    t = fixed_latency(op) + nbytes / channel_bandwidth

The fixed part models NAND array access plus controller/command handling;
the proportional part models the channel (ONFI bus) transfer.  Defaults are
representative of a 2022-era enterprise TLC drive of the class the paper
used (multi-GB/s sequential across 8+ channels, ~70 us reads, ~0.5 ms
programs); the benchmark calibration module documents the exact values used
for each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.units import MB, usec

__all__ = ["NandLatencyModel"]


@dataclass(frozen=True)
class NandLatencyModel:
    """Latency/bandwidth parameters for one NAND channel.

    Attributes
    ----------
    read_latency:
        Fixed seconds per read command (NAND tR + controller).
    program_latency:
        Fixed seconds until a write/append command *acknowledges*.
        Enterprise drives with power-loss protection ack once data reaches
        the capacitor-backed controller DRAM (~tens of us); the actual NAND
        program happens asynchronously.  Sustained write throughput is still
        bounded by the channel-bandwidth term.
    erase_latency:
        Seconds of *channel occupancy* for an erase / zone reset.  The NAND
        block erase itself (~2 ms) runs inside the dies with the channel
        free, so the channel only carries the command traffic plus a small
        scheduling share.
    channel_bandwidth:
        Bytes per second of one channel's data bus.
    command_overhead:
        Controller firmware time per command (queueing, FTL lookup, DMA
        setup), paid on every operation in addition to the NAND time.
    """

    read_latency: float = usec(70)
    program_latency: float = usec(25)
    erase_latency: float = usec(100)
    channel_bandwidth: float = 400 * MB
    command_overhead: float = usec(8)

    def __post_init__(self) -> None:
        if min(
            self.read_latency,
            self.program_latency,
            self.erase_latency,
            self.command_overhead,
        ) < 0:
            raise StorageError("latencies must be non-negative")
        if self.channel_bandwidth <= 0:
            raise StorageError("channel bandwidth must be positive")

    def read_time(self, nbytes: int) -> float:
        """Channel-occupancy seconds for a read of ``nbytes``."""
        return self.command_overhead + self.read_latency + nbytes / self.channel_bandwidth

    def write_time(self, nbytes: int) -> float:
        """Channel-occupancy seconds for a write/append of ``nbytes``."""
        return (
            self.command_overhead
            + self.program_latency
            + nbytes / self.channel_bandwidth
        )

    def erase_time(self) -> float:
        """Channel-occupancy seconds for an erase / zone reset."""
        return self.command_overhead + self.erase_latency
