"""I/O accounting shared by every storage device in the reproduction.

Figures 7b and 10b of the paper report device-level I/O statistics (bytes
read and written during an insertion or query phase); :class:`IoStats` is
the structure both the ZNS and conventional SSD models maintain and the
benchmark harness snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IoStats"]


@dataclass
class IoStats:
    """Cumulative device I/O counters.

    ``gc_bytes_copied`` counts FTL garbage-collection relocation traffic
    (conventional drive only); it is *also* included in ``bytes_written`` /
    ``bytes_read`` so the totals reflect everything the NAND saw.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    erase_ops: int = 0
    gc_bytes_copied: int = 0
    #: busy-seconds accumulated per channel, for bandwidth-utilization reports
    channel_busy: dict[int, float] = field(default_factory=dict)

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1

    def record_erase(self) -> None:
        self.erase_ops += 1

    def record_gc_copy(self, nbytes: int) -> None:
        self.gc_bytes_copied += nbytes

    def record_channel_busy(self, channel: int, seconds: float) -> None:
        self.channel_busy[channel] = self.channel_busy.get(channel, 0.0) + seconds

    @property
    def total_bytes(self) -> int:
        """All bytes moved to or from the NAND."""
        return self.bytes_read + self.bytes_written

    def snapshot(self) -> "IoStats":
        """A frozen copy for before/after diffing."""
        return IoStats(
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            read_ops=self.read_ops,
            write_ops=self.write_ops,
            erase_ops=self.erase_ops,
            gc_bytes_copied=self.gc_bytes_copied,
            channel_busy=dict(self.channel_busy),
        )

    def delta(self, earlier: "IoStats") -> "IoStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IoStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            erase_ops=self.erase_ops - earlier.erase_ops,
            gc_bytes_copied=self.gc_bytes_copied - earlier.gc_bytes_copied,
            channel_busy={
                ch: busy - earlier.channel_busy.get(ch, 0.0)
                for ch, busy in self.channel_busy.items()
            },
        )
