"""Functional model of an NVMe Zoned-Namespace SSD.

The device exposes zone append/read/reset/finish operations; every operation
is a simulation generator that occupies the zone's NAND channel for the time
given by the latency model, so concurrent I/O across *different* channels
proceeds in parallel while I/O to the same channel queues — exactly the
contention KV-CSD's zone-cluster striping is designed around (Section IV of
the paper).

Data is stored for real; reads return the bytes that were appended.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.errors import StorageError
from repro.obs.journal import journal_event
from repro.ssd.faults import PowerCut
from repro.obs.trace import trace_span
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.ssd.geometry import SsdGeometry
from repro.ssd.latency import NandLatencyModel
from repro.ssd.metrics import IoStats
from repro.ssd.zone import Zone, ZoneState

__all__ = ["ZnsSsd"]


class ZnsSsd:
    """A ZNS SSD: an array of zones striped across NAND channels."""

    def __init__(
        self,
        env: Environment,
        geometry: SsdGeometry | None = None,
        latency: NandLatencyModel | None = None,
        name: str = "zns0",
    ):
        self.env = env
        self.geometry = geometry or SsdGeometry()
        self.latency = latency or NandLatencyModel()
        self.name = name
        self.zones: list[Zone] = [
            Zone(zid, self.geometry.zone_size, self.geometry.channel_of_zone(zid))
            for zid in range(self.geometry.n_zones)
        ]
        self._channels = [
            Resource(env, capacity=1) for _ in range(self.geometry.n_channels)
        ]
        self.stats = IoStats()
        #: optional fault-injection plan (see :mod:`repro.ssd.faults`)
        self.faults = None

    # -- helpers --------------------------------------------------------------
    def zone(self, zone_id: int) -> Zone:
        """The zone object for ``zone_id`` (bounds-checked)."""
        if not 0 <= zone_id < len(self.zones):
            raise StorageError(f"zone id {zone_id} out of range for {self.name}")
        return self.zones[zone_id]

    def _occupy_channel(
        self, channel: int, seconds: float, op: str = "io", nbytes: int = 0
    ) -> Generator:
        res = self._channels[channel]
        if self.env.tracer is None:
            # Untraced fast path: no span objects, but the channel is still
            # acquired through the queue — a synchronous take would reorder
            # same-instant completions under channel contention.
            with res.request() as queued:
                yield queued
                yield self.env.timeout(seconds)
            self.stats.record_channel_busy(channel, seconds)
            return
        with trace_span(
            self.env,
            f"nand.{op}",
            "flash",
            lane=f"{self.name}/ch{channel}",
            busy=seconds,
            bytes=nbytes,
        ) as span:
            with res.request() as req:
                t0 = self.env.now
                yield req
                if span is not None:
                    span.args["wait"] = self.env.now - t0
                yield self.env.timeout(seconds)
        self.stats.record_channel_busy(channel, seconds)

    # -- operations (simulation generators) -----------------------------------
    def append(self, zone_id: int, data: bytes) -> Generator:
        """Append ``data`` to a zone; returns the intra-zone byte offset.

        The zone's space is claimed *before* the channel time elapses so that
        two concurrent appends to one zone cannot both observe the same write
        pointer (the device serialises appends per zone in hardware).
        """
        zone = self.zone(zone_id)
        if self.faults is not None:
            try:
                self.faults.check_write()
            except StorageError:
                journal_event(
                    self.env, "fault.trip", dev=self.name, op="write",
                    zone=zone_id,
                )
                raise
            keep = self.faults.check_torn_write(len(data))
            if keep is not None:
                # Mid-write power loss: only a prefix reaches flash.  The
                # journal line is best-effort (the environment dies with the
                # PowerCut); the surviving evidence is the torn zone tail.
                if keep:
                    zone.append(bytes(data[:keep]))
                journal_event(
                    self.env, "power.cut", dev=self.name, op="torn_append",
                    zone=zone_id, kept=keep, intended=len(data),
                )
                raise PowerCut(
                    f"torn append to zone {zone_id}: "
                    f"{keep}/{len(data)} bytes persisted"
                )
        offset = zone.append(bytes(data))  # validates state/space, claims range
        yield from self._occupy_channel(
            zone.channel, self.latency.write_time(len(data)), "append", len(data)
        )
        self.stats.record_write(len(data))
        return offset

    def read(self, zone_id: int, offset: int, length: int) -> Generator:
        """Read ``length`` bytes at ``offset`` within a zone; returns bytes."""
        zone = self.zone(zone_id)
        if self.faults is not None:
            try:
                self.faults.check_read()
            except StorageError:
                journal_event(
                    self.env, "fault.trip", dev=self.name, op="read",
                    zone=zone_id,
                )
                raise
        data = zone.read(offset, length)  # validates the range
        yield from self._occupy_channel(
            zone.channel, self.latency.read_time(length), "read", length
        )
        self.stats.record_read(length)
        return data

    def reset_zone(self, zone_id: int) -> Generator:
        """Reset a zone: discard its data and rewind the write pointer."""
        self._check_powered()
        zone = self.zone(zone_id)
        yield from self._occupy_channel(zone.channel, self.latency.erase_time(), "erase")
        zone.reset()
        self.stats.record_erase()

    def finish_zone(self, zone_id: int) -> Generator:
        """Transition a zone to FULL; costs one command overhead."""
        self._check_powered()
        zone = self.zone(zone_id)
        yield from self._occupy_channel(
            zone.channel, self.latency.command_overhead, "finish"
        )
        zone.finish()

    def _check_powered(self) -> None:
        """Zone-management ops mutate flash state too: a power-cut device
        must not erase or seal anything (cleanup paths unwinding through a
        :class:`PowerCut` would otherwise destroy evidence the remount
        needs)."""
        if self.faults is not None and self.faults.power_cut:
            raise PowerCut("device is powered off")

    # -- power-cycle support ---------------------------------------------------
    def flash_state(self) -> list[tuple[str, bytes]]:
        """The power-safe state of every zone: ``(state, data)`` pairs.

        Exactly what survives a power cut — zone contents and state machine
        positions; everything else (channel queues, stats, fault plans) is
        volatile.  Pure state read, no simulation events.
        """
        return [(zone.state.value, bytes(zone._data)) for zone in self.zones]

    def load_flash_state(self, snapshot: list[tuple[str, bytes]]) -> None:
        """Install a flash snapshot taken from an identical-geometry device.

        Used by crash harnesses to model a power cycle: snapshot the dying
        device's flash, construct a fresh SSD in a fresh environment, load
        the snapshot, and mount.
        """
        if len(snapshot) != len(self.zones):
            raise StorageError(
                f"flash snapshot has {len(snapshot)} zones, "
                f"device has {len(self.zones)}"
            )
        for zone, (state, data) in zip(self.zones, snapshot):
            if len(data) > zone.capacity:
                raise StorageError(
                    f"snapshot zone {zone.zone_id} holds {len(data)} bytes, "
                    f"capacity is {zone.capacity}"
                )
            zone._data = bytearray(data)
            zone.state = ZoneState(state)

    # -- inspection ------------------------------------------------------------
    def zones_in_state(self, state: ZoneState) -> list[int]:
        """Zone ids currently in ``state``."""
        return [z.zone_id for z in self.zones if z.state == state]

    @property
    def free_zones(self) -> int:
        """Number of EMPTY zones."""
        return sum(1 for z in self.zones if z.state == ZoneState.EMPTY)

    def bytes_stored(self) -> int:
        """Total bytes currently held across all zones."""
        return sum(z.write_pointer for z in self.zones)

    def introspect(self) -> dict:
        """Zone table + I/O counters for device snapshots.

        Pure state read (no channel time, no simulation events).  The
        per-zone table lists only non-EMPTY zones — on a mostly-idle device
        the interesting rows — while ``zones_by_state`` carries the full
        population counts.
        """
        by_state = {state.value: 0 for state in ZoneState}
        table = []
        for zone in self.zones:
            by_state[zone.state.value] += 1
            if zone.state is not ZoneState.EMPTY:
                table.append(
                    {
                        "zone_id": zone.zone_id,
                        "state": zone.state.value,
                        "write_pointer": zone.write_pointer,
                        "capacity": zone.capacity,
                        "channel": zone.channel,
                    }
                )
        return {
            "name": self.name,
            "geometry": {
                "n_channels": self.geometry.n_channels,
                "n_zones": self.geometry.n_zones,
                "zone_size": self.geometry.zone_size,
            },
            "zones_by_state": by_state,
            "bytes_stored": self.bytes_stored(),
            "open_or_full_zones": table,
            "io": {
                "bytes_read": self.stats.bytes_read,
                "bytes_written": self.stats.bytes_written,
                "read_ops": self.stats.read_ops,
                "write_ops": self.stats.write_ops,
                "erase_ops": self.stats.erase_ops,
            },
            "faults": (
                self.faults.introspect() if self.faults is not None else None
            ),
        }
