"""A single ZNS zone: state machine, write pointer, and byte storage.

Zones follow the NVMe ZNS state model, reduced to the states this library
exercises: ``EMPTY -> OPEN -> FULL`` with ``reset`` returning to ``EMPTY``.
Data is stored for real (a ``bytearray``) so reads round-trip exactly.
"""

from __future__ import annotations

import enum

from repro.errors import InvalidAddressError, ZoneFullError, ZoneStateError

__all__ = ["Zone", "ZoneState"]


class ZoneState(enum.Enum):
    """Lifecycle states of a zone (reduced NVMe ZNS model)."""

    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"


class Zone:
    """One zone of a ZNS SSD.

    Only sequential writes at the write pointer are allowed; reads may touch
    any byte below the write pointer.  ``reset()`` rewinds the pointer and
    discards the data.
    """

    __slots__ = ("zone_id", "capacity", "channel", "state", "_data")

    def __init__(self, zone_id: int, capacity: int, channel: int):
        self.zone_id = zone_id
        self.capacity = capacity
        self.channel = channel
        self.state = ZoneState.EMPTY
        self._data = bytearray()

    @property
    def write_pointer(self) -> int:
        """Next writable byte offset within the zone."""
        return len(self._data)

    @property
    def remaining(self) -> int:
        """Bytes left before the zone is full."""
        return self.capacity - len(self._data)

    def append(self, data: bytes) -> int:
        """Append ``data`` at the write pointer; returns the write offset."""
        if self.state == ZoneState.FULL:
            raise ZoneStateError(f"zone {self.zone_id} is FULL")
        if len(data) > self.remaining:
            raise ZoneFullError(
                f"zone {self.zone_id}: append of {len(data)} bytes exceeds "
                f"remaining {self.remaining}"
            )
        offset = len(self._data)
        self._data.extend(data)
        self.state = ZoneState.FULL if self.remaining == 0 else ZoneState.OPEN
        return offset

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` (must be written)."""
        if offset < 0 or length < 0 or offset + length > len(self._data):
            raise InvalidAddressError(
                f"zone {self.zone_id}: read [{offset}, {offset + length}) "
                f"beyond write pointer {len(self._data)}"
            )
        return bytes(self._data[offset : offset + length])

    def finish(self) -> None:
        """Explicitly transition the zone to FULL (no more writes)."""
        if self.state == ZoneState.EMPTY:
            raise ZoneStateError(f"cannot finish EMPTY zone {self.zone_id}")
        self.state = ZoneState.FULL

    def reset(self) -> None:
        """Discard all data and rewind the write pointer."""
        self._data = bytearray()
        self.state = ZoneState.EMPTY
