"""Size and time unit helpers.

All sizes in the library are plain integers in bytes and all simulated times
are floats in seconds.  These constants and helpers exist so that call sites
read naturally (``4 * KiB``, ``usec(20)``) and so that no magic numbers leak
into the subsystems.
"""

from __future__ import annotations

#: One kibibyte (2**10 bytes).
KiB: int = 1024
#: One mebibyte (2**20 bytes).
MiB: int = 1024 * KiB
#: One gibibyte (2**30 bytes).
GiB: int = 1024 * MiB
#: One tebibyte (2**40 bytes).
TiB: int = 1024 * GiB

#: Decimal kilobyte/megabyte/gigabyte, used for bandwidth figures that vendors
#: quote in base-10 units (e.g. "3.2 GB/s").
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB


def usec(n: float) -> float:
    """Return ``n`` microseconds expressed in seconds."""
    return n * 1e-6


def msec(n: float) -> float:
    """Return ``n`` milliseconds expressed in seconds."""
    return n * 1e-3


def nsec(n: float) -> float:
    """Return ``n`` nanoseconds expressed in seconds."""
    return n * 1e-9


def bytes_per_sec(bandwidth: float) -> float:
    """Identity helper used to document that a constant is a bandwidth."""
    return float(bandwidth)


def transfer_time(nbytes: int, bandwidth_bytes_per_s: float) -> float:
    """Time in seconds to move ``nbytes`` at the given bandwidth.

    A bandwidth of ``0`` or ``inf`` means "free" and returns ``0.0`` for
    ``inf``; zero bandwidth is a configuration error.
    """
    if bandwidth_bytes_per_s == float("inf"):
        return 0.0
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / bandwidth_bytes_per_s


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (binary units), e.g. ``'1.5 MiB'``."""
    n = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(n)} B"
            return f"{n:.1f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``'12.3 ms'`` or ``'4.5 s'``."""
    s = float(seconds)
    if s == 0.0:
        return "0 s"
    if abs(s) < 1e-6:
        return f"{s * 1e9:.1f} ns"
    if abs(s) < 1e-3:
        return f"{s * 1e6:.1f} us"
    if abs(s) < 1.0:
        return f"{s * 1e3:.1f} ms"
    return f"{s:.2f} s"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def align_up(n: int, alignment: int) -> int:
    """Round ``n`` up to the next multiple of ``alignment``."""
    return ceil_div(n, alignment) * alignment
