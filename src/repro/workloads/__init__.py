"""Workload generation and the multi-threaded benchmark driver."""

from repro.workloads.adapters import KvCsdAdapter, RocksDbAdapter, StoreAdapter
from repro.workloads.runner import PhaseReport, get_phase, load_phase, run_phase
from repro.workloads.synthetic import SyntheticSpec, generate_keys, generate_pairs
from repro.workloads.vpic import (
    ENERGY_DTYPE,
    ENERGY_OFFSET,
    ENERGY_WIDTH,
    VpicDataset,
    VpicSpec,
)
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "SyntheticSpec",
    "generate_pairs",
    "generate_keys",
    "VpicSpec",
    "VpicDataset",
    "ENERGY_OFFSET",
    "ENERGY_WIDTH",
    "ENERGY_DTYPE",
    "ZipfSampler",
    "StoreAdapter",
    "KvCsdAdapter",
    "RocksDbAdapter",
    "PhaseReport",
    "run_phase",
    "load_phase",
    "get_phase",
]
