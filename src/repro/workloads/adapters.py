"""Uniform driver interface over both key-value stores.

The paper's test program uses "a modular design ... such that the same code
can run over both DB implementations" (Section VI.B).  These adapters are
that modular layer: the benchmark runner drives containers (keyspaces /
RocksDB instances) through one interface, and each adapter maps the calls to
its store's semantics — including what "finishing a load" means:

* KV-CSD: invoke device compaction and return immediately (the device works
  asynchronously; the application may exit);
* RocksDB AUTO: flush and wait for all background compaction to conclude
  (the paper includes this wait in the reported insertion time);
* RocksDB DEFERRED: one single-pass compact-everything;
* RocksDB NONE: flush only.
"""

from __future__ import annotations

import abc
from collections.abc import Generator
from typing import Sequence

from repro.core.client import KvCsdClient
from repro.errors import KeyNotFoundError
from repro.host.filesystem import Filesystem
from repro.host.threads import ThreadCtx
from repro.lsm.db import Db
from repro.lsm.options import CompactionMode, DbOptions

__all__ = ["StoreAdapter", "KvCsdAdapter", "RocksDbAdapter"]


class StoreAdapter(abc.ABC):
    """The interface the benchmark runner drives."""

    @abc.abstractmethod
    def create_container(self, name: str, ctx: ThreadCtx) -> Generator:
        """Create an empty, writable container."""

    @abc.abstractmethod
    def insert(
        self, name: str, pairs: Sequence[tuple[bytes, bytes]], ctx: ThreadCtx
    ) -> Generator:
        """Bulk-insert pairs into a container."""

    @abc.abstractmethod
    def finish_load(self, name: str, ctx: ThreadCtx) -> Generator:
        """Everything the application must do before exiting its write phase.

        The duration of insert + finish_load is the paper's reported
        insertion time.
        """

    @abc.abstractmethod
    def prepare_queries(self, name: str, ctx: ThreadCtx) -> Generator:
        """Make the container queryable (wait for async device work, ...)."""

    @abc.abstractmethod
    def get(self, name: str, key: bytes, ctx: ThreadCtx) -> Generator:
        """Point lookup; returns the value or None."""

    @abc.abstractmethod
    def scan(self, name: str, lo: bytes, hi: bytes, ctx: ThreadCtx) -> Generator:
        """Range query over [lo, hi); returns (key, value) pairs."""


class KvCsdAdapter(StoreAdapter):
    """Drives keyspaces on one KV-CSD device."""

    def __init__(self, client: KvCsdClient):
        self.client = client

    def create_container(self, name: str, ctx: ThreadCtx) -> Generator:
        yield from self.client.create_keyspace(name, ctx)
        yield from self.client.open_keyspace(name, ctx)

    def insert(self, name, pairs, ctx) -> Generator:
        yield from self.client.bulk_put(name, pairs, ctx)

    def finish_load(self, name: str, ctx: ThreadCtx) -> Generator:
        # Deferred compaction: kick it off and return; the device hides the
        # latency (Section V, "Deferred Compaction").
        yield from self.client.compact(name, ctx)

    def prepare_queries(self, name: str, ctx: ThreadCtx) -> Generator:
        yield from self.client.wait_for_device(name, ctx)

    def get(self, name: str, key: bytes, ctx: ThreadCtx) -> Generator:
        try:
            value = yield from self.client.get(name, key, ctx)
        except KeyNotFoundError:
            return None
        return value

    def scan(self, name: str, lo: bytes, hi: bytes, ctx: ThreadCtx) -> Generator:
        result = yield from self.client.range_query(name, lo, hi, ctx)
        return result


class RocksDbAdapter(StoreAdapter):
    """Drives one RocksDB-like instance per container on a shared filesystem."""

    def __init__(
        self,
        fs: Filesystem,
        bg_ctx: ThreadCtx,
        options: DbOptions,
        env,
    ):
        self.fs = fs
        self.bg_ctx = bg_ctx
        self.options = options
        self.env = env
        self.dbs: dict[str, Db] = {}

    def db(self, name: str) -> Db:
        return self.dbs[name]

    def create_container(self, name: str, ctx: ThreadCtx) -> Generator:
        db = Db(self.env, self.fs, bg_ctx=self.bg_ctx, options=self.options, name=name)
        self.dbs[name] = db
        yield from db.open(ctx)

    def insert(self, name, pairs, ctx) -> Generator:
        yield from self.dbs[name].write_batch(list(pairs), ctx)

    def finish_load(self, name: str, ctx: ThreadCtx) -> Generator:
        db = self.dbs[name]
        mode = self.options.compaction_mode
        if mode is CompactionMode.AUTO:
            yield from db.flush(ctx)
            yield from db.wait_for_compaction()
        elif mode is CompactionMode.DEFERRED:
            yield from db.compact_all(ctx)
        else:  # NONE
            yield from db.flush(ctx)
            yield from db.wait_for_compaction()

    def prepare_queries(self, name: str, ctx: ThreadCtx) -> Generator:
        # RocksDB data is already queryable; the paper drops the OS page
        # cache at the start of each query run.
        self.fs.drop_caches()
        if False:  # pragma: no cover - keep generator shape
            yield None

    def get(self, name: str, key: bytes, ctx: ThreadCtx) -> Generator:
        value = yield from self.dbs[name].get(key, ctx)
        return value

    def scan(self, name: str, lo: bytes, hi: bytes, ctx: ThreadCtx) -> Generator:
        result = yield from self.dbs[name].scan(lo, hi, ctx)
        return result
