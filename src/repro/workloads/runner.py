"""Multi-threaded simulated client driver.

Reproduces the paper's test methodology: N application threads, each pinned
to a CPU core, concurrently loading data (into a shared keyspace or
per-thread keyspaces) and later issuing queries.  Durations are measured on
the simulation clock from phase start to the completion of the slowest
thread.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Sequence

from repro.host.threads import ThreadCtx
from repro.sim.core import Environment
from repro.sim.sync import AllOf
from repro.workloads.adapters import StoreAdapter

__all__ = ["PhaseReport", "run_phase", "load_phase", "get_phase"]


@dataclass
class PhaseReport:
    """Timing of one benchmark phase."""

    seconds: float
    per_thread_seconds: list[float] = field(default_factory=list)
    operations: int = 0

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.seconds if self.seconds > 0 else float("inf")


def run_phase(env: Environment, thread_bodies: Sequence[Generator]) -> PhaseReport:
    """Run thread bodies concurrently; returns phase timing.

    The phase starts now and ends when the slowest thread finishes — the
    same "time to insert all keys" metric the paper reports.
    """
    start = env.now
    finish_times: list[float] = []

    def wrap(body: Generator) -> Generator:
        yield from body
        finish_times.append(env.now)

    procs = [env.process(wrap(body)) for body in thread_bodies]
    if procs:
        env.run(AllOf(env, procs))
    return PhaseReport(
        seconds=env.now - start,
        per_thread_seconds=[t - start for t in finish_times],
    )


def load_phase(
    env: Environment,
    adapter: StoreAdapter,
    assignments: Sequence[tuple[str, Sequence[tuple[bytes, bytes]], ThreadCtx]],
    batch_pairs: int = 2048,
    create_containers: bool = True,
) -> PhaseReport:
    """The write phase: each (container, pairs, ctx) runs on its own thread.

    Each thread creates its container (unless pre-created), streams its
    pairs in batches, then runs the adapter's ``finish_load`` — so the phase
    duration includes compaction waits exactly where each store imposes
    them.
    """
    start_time = env.now
    seen: set[str] = set()
    for name, _pairs, _ctx in assignments:
        seen.add(name)
    if create_containers:
        creators = []
        created: set[str] = set()
        for name, _pairs, ctx in assignments:
            if name in created:
                continue
            created.add(name)

            def create(name=name, ctx=ctx) -> Generator:
                yield from adapter.create_container(name, ctx)

            creators.append(create())
        run_phase(env, creators)

    bodies = []
    total_ops = 0
    for name, pairs, ctx in assignments:
        total_ops += len(pairs)

        def body(name=name, pairs=pairs, ctx=ctx) -> Generator:
            for start in range(0, len(pairs), batch_pairs):
                yield from adapter.insert(
                    name, pairs[start : start + batch_pairs], ctx
                )

        bodies.append(body())
    report = run_phase(env, bodies)
    report.seconds = env.now - start_time  # include container creation

    # finish_load once per container, concurrently (the paper's program
    # invokes compaction per keyspace and waits once).
    finals = []
    for name in sorted(seen):
        ctx = next(c for n, _p, c in assignments if n == name)

        def final(name=name, ctx=ctx) -> Generator:
            yield from adapter.finish_load(name, ctx)

        finals.append(final())
    t0 = env.now
    run_phase(env, finals)
    report.seconds += env.now - t0
    report.operations = total_ops
    return report


def get_phase(
    env: Environment,
    adapter: StoreAdapter,
    assignments: Sequence[tuple[str, Sequence[bytes], ThreadCtx]],
    expect_found: bool = True,
) -> PhaseReport:
    """The query phase: each thread GETs its key list from its container."""
    bodies = []
    total_ops = sum(len(keys) for _n, keys, _c in assignments)

    def body(name: str, keys: Sequence[bytes], ctx: ThreadCtx) -> Generator:
        for key in keys:
            value = yield from adapter.get(name, key, ctx)
            if expect_found and value is None:
                raise AssertionError(f"lost key {key!r} in {name}")

    for name, keys, ctx in assignments:
        bodies.append(body(name, keys, ctx))
    report = run_phase(env, bodies)
    report.operations = total_ops
    return report
