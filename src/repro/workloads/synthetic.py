"""Synthetic key-value workload generation (the paper's micro benchmarks).

"A total of 32M random key-value pairs are inserted in each run.  We use 16B
keys and 32B values." (Section VI.B) — generation is vectorised with numpy
so multi-hundred-thousand-pair workloads cost milliseconds to produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["SyntheticSpec", "generate_pairs", "generate_keys"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape of one synthetic workload."""

    n_pairs: int
    key_bytes: int = 16
    value_bytes: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pairs < 0:
            raise WorkloadError("n_pairs must be non-negative")
        if not 1 <= self.key_bytes <= 0xFFFF:
            raise WorkloadError("key size out of range")
        if self.value_bytes < 0:
            raise WorkloadError("value size must be non-negative")

    @property
    def data_bytes(self) -> int:
        return self.n_pairs * (self.key_bytes + self.value_bytes)


def generate_keys(n: int, key_bytes: int, rng: np.random.Generator) -> list[bytes]:
    """``n`` distinct random keys of ``key_bytes`` each.

    Keys embed a sequence number in their tail so they are guaranteed unique
    while the head stays uniformly random (keys arrive unordered, like the
    paper's random inserts).
    """
    if key_bytes >= 8:
        head = rng.integers(0, 256, size=(n, key_bytes - 8), dtype=np.uint8)
        tail = np.arange(n, dtype="<u8").view(np.uint8).reshape(n, 8)
        raw = np.concatenate([head, tail], axis=1) if key_bytes > 8 else tail
    else:
        # Short keys: sequence number truncated; unique while n < 256**key_bytes.
        if n > 256**key_bytes:
            raise WorkloadError("cannot generate that many unique short keys")
        raw = (
            np.arange(n, dtype="<u8")
            .view(np.uint8)
            .reshape(n, 8)[:, :key_bytes]
        )
    return [row.tobytes() for row in raw]


def generate_pairs(spec: SyntheticSpec) -> list[tuple[bytes, bytes]]:
    """Materialise the workload as (key, value) pairs."""
    rng = np.random.default_rng(spec.seed)
    keys = generate_keys(spec.n_pairs, spec.key_bytes, rng)
    if spec.value_bytes == 0:
        return [(k, b"") for k in keys]
    values = rng.integers(
        0, 256, size=(spec.n_pairs, spec.value_bytes), dtype=np.uint8
    )
    return [(k, values[i].tobytes()) for i, k in enumerate(keys)]
