"""VPIC-like particle dataset (the paper's macro benchmark input).

"Our sample dataset is a partial VPIC simulation dump consisting of 256M
particles in the form of 16 binary files.  Each VPIC particle is 48 bytes,
consisting of a 16B particle ID and a 32B payload made up of 8 numeric
attributes with one of them being the kinetic energy that we used for
secondary index construction and queries." (Section VI.C)

We have no access to LANL's dump, so this module synthesises a dataset with
the same schema and the statistical property the queries depend on: kinetic
energy follows a Maxwell–Boltzmann-like heavy-tailed distribution, so small
energy-threshold queries are highly selective (the paper sweeps 0.1% .. 20%
selectivity).  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["VpicSpec", "VpicDataset", "ENERGY_OFFSET", "ENERGY_WIDTH", "ENERGY_DTYPE"]

#: Layout of the 32 B payload: 8 little-endian float32 attributes
#: (x, y, z, ux, uy, uz, energy, weight) — energy is attribute index 6.
N_ATTRIBUTES = 8
ENERGY_INDEX = 6
ENERGY_OFFSET = ENERGY_INDEX * 4
ENERGY_WIDTH = 4
ENERGY_DTYPE = "f32"
PARTICLE_ID_BYTES = 16
PAYLOAD_BYTES = N_ATTRIBUTES * 4


@dataclass(frozen=True)
class VpicSpec:
    """Shape of one synthetic VPIC dump."""

    n_particles: int
    n_files: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_particles < 1:
            raise WorkloadError("need at least one particle")
        if self.n_files < 1 or self.n_particles % self.n_files != 0:
            raise WorkloadError("particles must divide evenly across files")

    @property
    def particles_per_file(self) -> int:
        return self.n_particles // self.n_files

    @property
    def particle_bytes(self) -> int:
        return PARTICLE_ID_BYTES + PAYLOAD_BYTES

    @property
    def dataset_bytes(self) -> int:
        return self.n_particles * self.particle_bytes


class VpicDataset:
    """A generated dump: per-file particle IDs and payloads."""

    def __init__(self, spec: VpicSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        n = spec.n_particles
        attrs = np.empty((n, N_ATTRIBUTES), dtype="<f4")
        # positions in a unit box, momenta ~ N(0,1)
        attrs[:, 0:3] = rng.random((n, 3), dtype=np.float32)
        attrs[:, 3:6] = rng.standard_normal((n, 3)).astype(np.float32)
        # kinetic energy: Maxwell-Boltzmann => Gamma(k=1.5) — heavy tailed
        attrs[:, ENERGY_INDEX] = rng.gamma(1.5, 1.0, size=n).astype(np.float32)
        attrs[:, 7] = 1.0  # statistical weight
        self._attrs = attrs
        # 16 B particle IDs: 8 B file id + 8 B in-file index (unique)
        per_file = spec.particles_per_file
        file_ids = np.repeat(np.arange(spec.n_files, dtype="<u8"), per_file)
        in_file = np.tile(np.arange(per_file, dtype="<u8"), spec.n_files)
        ids = np.empty((n, PARTICLE_ID_BYTES), dtype=np.uint8)
        ids[:, :8] = file_ids.view(np.uint8).reshape(n, 8)
        ids[:, 8:] = in_file.view(np.uint8).reshape(n, 8)
        self._ids = ids

    # -- access -------------------------------------------------------------------
    def file_particles(self, file_idx: int) -> list[tuple[bytes, bytes]]:
        """(particle_id, payload) pairs of one of the binary files."""
        spec = self.spec
        if not 0 <= file_idx < spec.n_files:
            raise WorkloadError(f"file index {file_idx} out of range")
        per_file = spec.particles_per_file
        start = file_idx * per_file
        stop = start + per_file
        payloads = self._attrs[start:stop].view(np.uint8).reshape(per_file, PAYLOAD_BYTES)
        ids = self._ids[start:stop]
        return [
            (ids[i].tobytes(), payloads[i].tobytes()) for i in range(per_file)
        ]

    def energies(self) -> np.ndarray:
        """Energy of every particle (float32)."""
        return self._attrs[:, ENERGY_INDEX]

    def energy_threshold(self, selectivity: float) -> float:
        """Energy value above which a ``selectivity`` fraction of particles lie.

        The paper drives "different energy thresholds to drive different
        query selectivity levels" from 0.1% to 20%.
        """
        if not 0 < selectivity <= 1:
            raise WorkloadError("selectivity must be in (0, 1]")
        return float(np.quantile(self.energies(), 1.0 - selectivity))

    def particles_above(self, threshold: float) -> int:
        """How many particles a ``[threshold, inf)`` energy query returns.

        Inclusive on the lower bound, matching
        :meth:`energy_query_bounds`' half-open interval after the threshold
        is narrowed to the on-disk float32 precision.
        """
        return int(np.count_nonzero(self.energies() >= np.float32(threshold)))

    @staticmethod
    def energy_query_bounds(threshold: float) -> tuple[bytes, bytes]:
        """Raw little-endian f32 bounds for 'energy > threshold' queries."""
        return struct.pack("<f", threshold), struct.pack("<f", np.inf)
