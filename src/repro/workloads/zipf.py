"""Zipfian sampling for skewed access patterns.

The paper's GET benchmark issues random point queries; production key-value
workloads are typically skewed, so the library also ships a YCSB-style
zipfian sampler for the extended experiments (cache-sensitivity ablations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draws ranks in [0, n) with probability proportional to 1/(rank+1)^theta."""

    def __init__(self, n: int, theta: float = 0.99, rng: np.random.Generator | None = None):
        if n < 1:
            raise WorkloadError("zipf needs a positive universe size")
        if theta < 0:
            raise WorkloadError("zipf skew must be non-negative")
        self.n = n
        self.theta = theta
        self.rng = rng or np.random.default_rng(0)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """``count`` ranks, most-popular-first ordering (rank 0 hottest)."""
        u = self.rng.random(count)
        return np.searchsorted(self._cdf, u, side="left")

    def hottest_fraction(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` most popular ranks."""
        if not 0 < top_k <= self.n:
            raise WorkloadError("top_k out of range")
        return float(self._cdf[top_k - 1])
