"""Unit tests for the benchmark infrastructure: report, calibration, CLI."""

import pytest

from repro.bench.calibration import (
    TABLE1_CSD,
    TABLE1_HOST,
    bench_db_options,
    bench_geometry,
    build_kvcsd_testbed,
    build_rocksdb_testbed,
)
from repro.bench.experiments import EXPERIMENTS, quick_config
from repro.bench.report import ResultTable, ShapeCheck, speedup
from repro.bench.table1 import table1, table1_checks
from repro.cli import main as cli_main
from repro.lsm import CompactionMode
from repro.units import KiB, MiB


# ------------------------------------------------------------------ report
def test_speedup():
    assert speedup(10.0, 2.0) == pytest.approx(5.0)
    assert speedup(10.0, 0.0) == float("inf")


def test_result_table_rendering():
    t = ResultTable("demo", ["a", "b"])
    t.add_row(1, 2.5)
    t.add_row("x", 0.001)
    t.add_note("a note")
    rendered = t.render()
    assert "demo" in rendered
    assert "a note" in rendered
    assert "2.50" in rendered


def test_result_table_rejects_bad_row():
    t = ResultTable("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_shape_check_str():
    ok = ShapeCheck("works", True, "3x")
    bad = ShapeCheck("broken", False)
    assert "PASS" in str(ok) and "3x" in str(ok)
    assert "FAIL" in str(bad)


# ------------------------------------------------------------------ calibration
def test_bench_geometry_defaults():
    g = bench_geometry()
    assert g.capacity == g.n_zones * g.zone_size
    assert g.n_channels == 8


def test_db_options_scale_with_data():
    small = bench_db_options(data_bytes=1 * MiB)
    large = bench_db_options(data_bytes=64 * MiB)
    assert large.memtable_bytes > small.memtable_bytes
    assert large.l1_target_bytes > small.l1_target_bytes
    # ratios preserved: ~24 flushes per run either way
    assert 1 * MiB / small.memtable_bytes == pytest.approx(
        64 * MiB / large.memtable_bytes, rel=0.5
    )


def test_db_options_overrides_win():
    options = bench_db_options(data_bytes=1 * MiB, memtable_bytes=123 * KiB)
    assert options.memtable_bytes == 123 * KiB


def test_testbed_builders():
    kv = build_kvcsd_testbed(seed=1)
    assert kv.cpu.n_cores == TABLE1_HOST.n_cores
    assert kv.board.spec.n_cores == TABLE1_CSD.n_cores
    rk = build_rocksdb_testbed(
        seed=1, compaction_mode=CompactionMode.DEFERRED, n_test_threads=4
    )
    assert rk.options.compaction_mode is CompactionMode.DEFERRED
    assert rk.bg_ctx.cores == (0, 1, 2, 3)


def test_table1_encoding_consistent():
    t = table1()
    assert len(t.rows) >= 7
    assert all(check.passed for check in table1_checks())


# ------------------------------------------------------------------ experiments registry
def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "compaction"
    }
    for exp in EXPERIMENTS.values():
        assert exp.description


def test_quick_configs_are_smaller():
    assert quick_config("fig7").n_pairs < EXPERIMENTS["fig7"].default_config.n_pairs
    assert (
        quick_config("fig11").n_particles
        < EXPERIMENTS["fig11"].default_config.n_particles
    )


# ------------------------------------------------------------------ CLI
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "fig12" in out


def test_cli_table1(capsys):
    assert cli_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "PASS" in out


def test_cli_unknown_experiment():
    assert cli_main(["run", "fig99"]) == 2


def test_cli_selftest(capsys):
    assert cli_main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "selftest passed" in out
