"""Micro-scale figure regressions inside the main test suite.

The benchmark suite (``pytest benchmarks/``) runs the quick/full configs;
these tests re-run the three cheapest experiments at micro scale so that
``pytest tests/`` alone catches regressions in the harness or in either
store's performance model.
"""

from repro.bench.fig7 import Fig7Config, run_fig7
from repro.bench.fig9 import Fig9Config, run_fig9
from repro.bench.fig11 import Fig11Config, run_fig11


def _assert_all(checks):
    failed = [str(c) for c in checks if not c.passed]
    assert not failed, "\n".join(failed)


def test_fig7_shape_micro():
    result = run_fig7(Fig7Config(n_pairs=16384, thread_counts=(1, 2, 8)))
    _assert_all(result.checks())


def test_fig9_shape_micro():
    result = run_fig9(Fig9Config(pairs_per_thread=8192, thread_counts=(1, 8)))
    _assert_all(result.checks())


def test_fig11_shape_micro():
    result = run_fig11(Fig11Config(n_particles=32768))
    _assert_all(result.checks())
    assert result.effective_speedup > 1.0
