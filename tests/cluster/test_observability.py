"""Cluster observability: device-scoped names in one shared hub/trace."""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster_testbed
from repro.nvme.kv_commands import KvGetCmd
from repro.obs import min_command_coverage, to_chrome_trace
from repro.obs.critpath import explain_report, install_critpath
from repro.obs.journal import install_journal
from repro.workloads import SyntheticSpec, generate_pairs, load_phase


@pytest.fixture(scope="module")
def traced():
    """A traced + journaled 2-device cluster that served a small workload."""
    tb = build_cluster_testbed(n_devices=2, seed=29)
    install_journal(tb.env)
    tracer, hub = tb.enable_tracing()
    install_critpath(tb.env, tracer=tracer)
    pairs = generate_pairs(
        SyntheticSpec(n_pairs=512, key_bytes=16, value_bytes=32, seed=29)
    )
    load_phase(tb.env, tb.adapter, [("obs", pairs, tb.thread_ctx(0))])

    def ready():
        yield from tb.adapter.prepare_queries("obs", tb.thread_ctx(0))

    tb.env.run(tb.env.process(ready()))

    def traffic():
        ctx = tb.thread_ctx(1)
        commands = [
            KvGetCmd(keyspace="obs", key=k) for k, _ in pairs[::11]
        ]
        yield from tb.router.submit_many(commands, ctx)
        yield from tb.router.range_query("obs", b"", b"\xff" * 17, ctx)

    tb.env.run(tb.env.process(traffic()))
    return tb, tracer, hub


class TestHubScoping:
    def test_every_device_owns_prefixed_series(self, traced):
        _tb, _tracer, hub = traced
        snapshot = hub.as_dict()
        for section in ("registries", "queues"):
            names = set(snapshot[section])
            for dev in ("dev0", "dev1"):
                assert any(n.startswith(f"{dev}.") for n in names), (
                    section, sorted(names),
                )

    def test_host_queue_pairs_scoped_by_device(self, traced):
        _tb, _tracer, hub = traced
        queues = hub.as_dict()["queues"]
        assert "dev0.host-kv" in queues
        assert "dev1.host-kv" in queues

    def test_router_gauges_ride_unprefixed(self, traced):
        _tb, _tracer, hub = traced
        gauges = hub.as_dict()["gauges"]
        assert "cluster.ring.devices" in gauges
        assert gauges["cluster.ring.devices"] == 2
        assert "cluster.migration.active" in gauges


class TestJournalAttribution:
    def test_device_events_carry_device_identity(self, traced):
        tb, _tracer, _hub = traced
        events = list(tb.env.journal.tail(0)) or list(tb.env.journal.events)
        devs = {
            e.fields.get("dev")
            for e in events
            if "dev" in e.fields
        }
        assert {"dev0", "dev1"} <= devs


class TestSpanParenting:
    def test_fanout_spans_parent_under_router_span(self, traced):
        _tb, tracer, _hub = traced
        doc = to_chrome_trace(tracer)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        by_id = {e["args"]["span_id"]: e for e in events if "span_id" in e.get("args", {})}
        fanned = [
            e for e in events
            if e["name"].startswith("cmd.") and "dev" in e.get("args", {})
        ]
        assert fanned, "no fanned-out per-device command spans recorded"
        bad = []
        for e in fanned:
            parent = by_id.get(e["args"].get("parent_id"))
            if parent is None or not (
                parent["name"].startswith("cluster.")
                or parent["name"].startswith("migrate.")
            ):
                bad.append(e["name"])
        assert not bad, bad

    def test_command_coverage_stays_high(self, traced):
        _tb, tracer, _hub = traced
        assert min_command_coverage(tracer) >= 0.95


class TestExplain:
    def test_explain_attributes_cluster_latency(self, traced):
        tb, tracer, _hub = traced
        report = explain_report(tracer, tb.env.critpath, now=tb.env.now)
        assert report["min_attributed"] >= 0.95
