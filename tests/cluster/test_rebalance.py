"""Online rebalancing: ring changes migrate data without losing reads."""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster_testbed, execute_ring_change, plan_ring_change
from repro.errors import SimulationError
from repro.workloads import SyntheticSpec, generate_pairs, load_phase, run_phase


def _pairs(n: int, seed: int = 17):
    return generate_pairs(
        SyntheticSpec(n_pairs=n, key_bytes=16, value_bytes=32, seed=seed)
    )


def _sealed_cluster(n_devices: int, ring_devices: tuple[str, ...], pairs):
    from repro.cluster import HashRing

    tb = build_cluster_testbed(
        n_devices=n_devices, seed=17, ring=HashRing(ring_devices)
    )
    load_phase(tb.env, tb.adapter, [("ks", pairs, tb.thread_ctx(0))])

    def ready():
        yield from tb.adapter.prepare_queries("ks", tb.thread_ctx(0))

    tb.env.run(tb.env.process(ready()))
    return tb


class TestPlan:
    def test_plan_lists_sealed_keyspaces(self):
        pairs = _pairs(256)
        tb = _sealed_cluster(3, ("dev0", "dev1"), pairs)
        new_ring = tb.router.ring.add_device("dev2")
        change = plan_ring_change(tb.router, new_ring)
        assert "ks" in change.keyspaces
        assert "dev2" in change.devices_added

    def test_plan_rejects_devices_outside_fleet(self):
        pairs = _pairs(256)
        tb = _sealed_cluster(2, ("dev0", "dev1"), pairs)
        with pytest.raises(SimulationError):
            plan_ring_change(tb.router, tb.router.ring.add_device("dev7"))


class TestExecute:
    def test_migration_preserves_every_pair(self):
        pairs = _pairs(768)
        tb = _sealed_cluster(3, ("dev0", "dev1"), pairs)
        new_ring = tb.router.ring.add_device("dev2")

        def migrate():
            return (
                yield from execute_ring_change(
                    tb.router, new_ring, tb.thread_ctx(1)
                )
            )

        out = {}

        def body():
            out["report"] = yield from migrate()

        tb.env.run(tb.env.process(body()))
        report = out["report"]
        assert report.moved_pairs > 0
        assert report.mismatches == 0
        assert report.verified_pairs == report.moved_pairs
        # ~1/3 of keys move to the new device; consistent hashing bounds it
        assert 0.15 < report.moved_pairs / len(pairs) < 0.55
        # the new device physically received the fragment
        assert tb.node("dev2").ssd.stats.bytes_written > 0
        assert tb.router.ring is new_ring

        def verify():
            ctx = tb.thread_ctx(2)
            for key, value in pairs:
                got = yield from tb.router.get("ks", key, ctx)
                assert got == value
            rows = yield from tb.router.range_query(
                "ks", b"", b"\xff" * 17, ctx
            )
            assert rows == sorted(pairs)
            return True

        ok = {}

        def vbody():
            ok["v"] = yield from verify()

        tb.env.run(tb.env.process(vbody()))
        assert ok["v"]

    def test_foreground_reads_survive_migration(self):
        pairs = _pairs(768)
        tb = _sealed_cluster(3, ("dev0", "dev1"), pairs)
        new_ring = tb.router.ring.add_device("dev2")
        state = {"done": False, "reads": 0}

        def migrator():
            yield from execute_ring_change(tb.router, new_ring, tb.thread_ctx(0))
            state["done"] = True

        def reader(t: int):
            ctx = tb.thread_ctx(1 + t)
            i = t
            while not state["done"]:
                key, value = pairs[i % len(pairs)]
                got = yield from tb.router.get("ks", key, ctx)
                assert got == value
                state["reads"] += 1
                i += 7

        run_phase(tb.env, [migrator(), reader(0), reader(1)])
        assert state["reads"] > 0
        assert tb.router.counters["stale_reads"] == 0

    def test_noop_ring_change_moves_nothing(self):
        pairs = _pairs(256)
        tb = _sealed_cluster(2, ("dev0", "dev1"), pairs)
        same_ring = tb.router.ring.with_devices(("dev0", "dev1"))

        out = {}

        def body():
            out["report"] = yield from execute_ring_change(
                tb.router, same_ring, tb.thread_ctx(0)
            )

        tb.env.run(tb.env.process(body()))
        assert out["report"].moved_pairs == 0

    def test_unsealed_keyspaces_are_skipped(self):
        pairs = _pairs(256)
        tb = _sealed_cluster(3, ("dev0", "dev1"), pairs)

        def make_open():
            ctx = tb.thread_ctx(0)
            yield from tb.router.create_keyspace("open-ks", ctx)
            yield from tb.router.open_keyspace("open-ks", ctx)
            yield from tb.router.put("open-ks", b"k", b"v", ctx)

        tb.env.run(tb.env.process(make_open()))
        change = plan_ring_change(
            tb.router, tb.router.ring.add_device("dev2")
        )
        assert "open-ks" in change.skipped
        assert "ks" in change.keyspaces

    def test_second_migration_chains_epochs(self):
        """dev2 joins, then dev3: the epoch chain resolves every key."""
        pairs = _pairs(512)
        tb = _sealed_cluster(4, ("dev0", "dev1"), pairs)

        def grow(name):
            def body():
                yield from execute_ring_change(
                    tb.router, tb.router.ring.add_device(name), tb.thread_ctx(0)
                )

            tb.env.run(tb.env.process(body()))

        grow("dev2")
        grow("dev3")

        def verify():
            ctx = tb.thread_ctx(1)
            for key, value in pairs[::5]:
                got = yield from tb.router.get("ks", key, ctx)
                assert got == value
            return True

        out = {}

        def vbody():
            out["v"] = yield from verify()

        tb.env.run(tb.env.process(vbody()))
        assert out["v"]
        assert len(tb.router.keyspaces["ks"].rings) == 3
