"""Hash-ring placement: distribution, stability, and edge cases."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing, RangePolicy, key_point
from repro.errors import SimulationError


def _keys(n: int) -> list[bytes]:
    return [f"key-{i:06d}".encode() for i in range(n)]


class TestSingleDevice:
    def test_everything_lands_on_the_only_device(self):
        ring = HashRing(("dev0",))
        for key in _keys(100):
            assert ring.owners("ks", key, 1) == ("dev0",)
            assert ring.primary("ks", key) == "dev0"

    def test_share_is_total(self):
        ring = HashRing(("dev0",))
        assert ring.share("dev0") == pytest.approx(1.0)


class TestDistribution:
    def test_keys_spread_across_devices(self):
        devices = tuple(f"dev{i}" for i in range(4))
        ring = HashRing(devices)
        counts = {d: 0 for d in devices}
        for key in _keys(4000):
            counts[ring.primary("ks", key)] += 1
        # vnodes keep the skew bounded: no device owns more than ~2x fair
        for device, count in counts.items():
            assert 0.4 * 1000 < count < 2.0 * 1000, (device, counts)

    def test_vnode_weight_skews_arc_share(self):
        ring = HashRing(("a", "b"), vnodes=128, weights={"a": 3.0, "b": 1.0})
        # arc share tracks the 3:1 vnode weighting within tolerance
        assert ring.share("a") > 2.0 * ring.share("b")
        counts = {"a": 0, "b": 0}
        for key in _keys(4000):
            counts[ring.primary("ks", key)] += 1
        assert counts["a"] > 2.0 * counts["b"]

    def test_keyspace_is_part_of_the_point(self):
        ring = HashRing(tuple(f"dev{i}" for i in range(4)))
        keys = _keys(200)
        a = [ring.primary("ks-a", k) for k in keys]
        b = [ring.primary("ks-b", k) for k in keys]
        assert a != b  # same keys, different keyspace -> different layout
        assert key_point("ks-a", keys[0]) != key_point("ks-b", keys[0])


class TestReplicaSets:
    def test_replicas_are_distinct_devices(self):
        ring = HashRing(tuple(f"dev{i}" for i in range(5)))
        for key in _keys(300):
            owners = ring.owners("ks", key, 3)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replica_count_clamps_to_fleet(self):
        ring = HashRing(("dev0", "dev1"))
        owners = ring.owners("ks", b"k", 5)
        assert sorted(owners) == ["dev0", "dev1"]

    def test_primary_is_first_owner(self):
        ring = HashRing(tuple(f"dev{i}" for i in range(4)))
        for key in _keys(50):
            assert ring.primary("ks", key) == ring.owners("ks", key, 3)[0]


class TestRingChanges:
    def test_add_device_moves_about_one_nth(self):
        devices = tuple(f"dev{i}" for i in range(4))
        ring = HashRing(devices)
        grown = ring.add_device("dev4")
        keys = _keys(4000)
        moved = sum(
            1 for k in keys
            if ring.primary("ks", k) != grown.primary("ks", k)
        )
        # consistent hashing: ~1/5 of keys move, and every moved key moves
        # *to* the new device, never between survivors
        assert 0.5 * 800 < moved < 1.8 * 800
        for k in keys:
            old, new = ring.primary("ks", k), grown.primary("ks", k)
            if old != new:
                assert new == "dev4"

    def test_remove_device_only_moves_its_keys(self):
        devices = tuple(f"dev{i}" for i in range(4))
        ring = HashRing(devices)
        shrunk = ring.remove_device("dev3")
        for k in _keys(2000):
            old, new = ring.primary("ks", k), shrunk.primary("ks", k)
            if old != "dev3":
                assert new == old  # survivors keep their keys

    def test_add_existing_device_raises(self):
        ring = HashRing(("dev0", "dev1"))
        with pytest.raises(SimulationError):
            ring.add_device("dev0")

    def test_remove_unknown_device_raises(self):
        ring = HashRing(("dev0", "dev1"))
        with pytest.raises(SimulationError):
            ring.remove_device("dev9")

    def test_remove_last_device_raises(self):
        ring = HashRing(("dev0",))
        with pytest.raises(SimulationError):
            ring.remove_device("dev0")


class TestRangePolicy:
    def test_contiguous_prefix_buckets(self):
        policy = RangePolicy(("dev0", "dev1"))
        lo = policy.primary("ks", b"\x00" * 8)
        hi = policy.primary("ks", b"\xff" * 8)
        assert lo == "dev0" and hi == "dev1"

    def test_replicas_distinct(self):
        policy = RangePolicy(tuple(f"dev{i}" for i in range(4)))
        for key in _keys(100):
            owners = policy.owners("ks", key, 2)
            assert len(set(owners)) == 2

    def test_with_devices_resplits(self):
        policy = RangePolicy(("dev0", "dev1"))
        grown = policy.with_devices(("dev0", "dev1", "dev2"))
        assert grown.primary("ks", b"\xff" * 8) == "dev2"
