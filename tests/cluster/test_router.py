"""Cluster router facade: one logical store over N devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_cluster_testbed
from repro.errors import KeyNotFoundError, SimulationError
from repro.nvme.kv_commands import KvExistCmd, KvGetCmd
from repro.workloads import SyntheticSpec, generate_pairs, load_phase, run_phase


def _pairs(n: int, seed: int = 11):
    return generate_pairs(
        SyntheticSpec(n_pairs=n, key_bytes=16, value_bytes=32, seed=seed)
    )


def _run(tb, gen):
    out = {}

    def body():
        out["value"] = yield from gen

    tb.env.run(tb.env.process(body()))
    return out["value"]


@pytest.fixture(scope="module")
def loaded():
    """A 2-device cluster with one sealed keyspace, loaded via the router."""
    tb = build_cluster_testbed(n_devices=2, seed=3)
    pairs = _pairs(1024)
    load_phase(tb.env, tb.adapter, [("ks", pairs, tb.thread_ctx(0))])

    def ready():
        yield from tb.adapter.prepare_queries("ks", tb.thread_ctx(0))

    tb.env.run(tb.env.process(ready()))
    return tb, pairs


class TestFacade:
    def test_every_key_readable_through_router(self, loaded):
        tb, pairs = loaded

        def gets():
            ctx = tb.thread_ctx(1)
            for key, value in pairs[::31]:
                got = yield from tb.router.get("ks", key, ctx)
                assert got == value
            return True

        assert _run(tb, gets())

    def test_data_is_actually_sharded(self, loaded):
        tb, _pairs_ = loaded
        stored = [node.ssd.stats.bytes_written for node in tb.nodes]
        assert all(b > 0 for b in stored), stored

    def test_missing_key_raises_key_not_found(self, loaded):
        tb, _pairs_ = loaded

        def miss():
            with pytest.raises(KeyNotFoundError):
                yield from tb.router.get("ks", b"no-such-key", tb.thread_ctx(1))
            return True

        assert _run(tb, miss())

    def test_multi_get_merges_across_devices(self, loaded):
        tb, pairs = loaded
        keys = [k for k, _ in pairs[::13]]

        def multi():
            return (
                yield from tb.router.multi_get("ks", keys, tb.thread_ctx(1))
            )

        got = _run(tb, multi())
        expect = {k: v for k, v in pairs if k in set(keys)}
        assert got == expect

    def test_range_query_is_globally_sorted_and_exact(self, loaded):
        tb, pairs = loaded
        sorted_pairs = sorted(pairs)
        lo = sorted_pairs[100][0]
        hi = sorted_pairs[900][0]

        def scan():
            return (
                yield from tb.router.range_query("ks", lo, hi, tb.thread_ctx(1))
            )

        rows = _run(tb, scan())
        expect = [(k, v) for k, v in sorted_pairs if lo <= k < hi]
        assert rows == expect

    def test_submit_many_preserves_input_order(self, loaded):
        tb, pairs = loaded
        picks = list(np.random.default_rng(5).integers(0, len(pairs), 64))
        commands = [KvGetCmd(keyspace="ks", key=pairs[p][0]) for p in picks]

        def batch():
            return (
                yield from tb.router.submit_many(commands, tb.thread_ctx(1))
            )

        completions = _run(tb, batch())
        assert len(completions) == len(commands)
        for p, completion in zip(picks, completions):
            assert completion.ok
            assert completion.value == pairs[p][1]

    def test_submit_many_returns_errors_in_place(self, loaded):
        tb, pairs = loaded
        commands = [
            KvGetCmd(keyspace="ks", key=pairs[0][0]),
            KvGetCmd(keyspace="ks", key=b"absent-key"),
            KvExistCmd(keyspace="ks", key=pairs[1][0]),
        ]

        def batch():
            return (
                yield from tb.router.submit_many(commands, tb.thread_ctx(1))
            )

        completions = _run(tb, batch())
        assert completions[0].ok and completions[0].value == pairs[0][1]
        assert not completions[1].ok
        assert completions[2].ok

    def test_submit_many_coalesces_duplicate_reads(self, loaded):
        tb, pairs = loaded
        hot_key, hot_value = pairs[0]
        commands = [
            KvGetCmd(keyspace="ks", key=hot_key) for _ in range(32)
        ] + [KvGetCmd(keyspace="ks", key=pairs[1][0])]
        before = tb.router.counters["coalesced_reads"]
        submitted_before = sum(
            node.client.qp.introspect()["submitted"] for node in tb.nodes
        )

        def batch():
            return (
                yield from tb.router.submit_many(commands, tb.thread_ctx(1))
            )

        completions = _run(tb, batch())
        # every duplicate position still gets its value...
        assert len(completions) == 33
        assert all(c.ok and c.value == hot_value for c in completions[:32])
        assert completions[32].value == pairs[1][1]
        # ...but the hot key cost one device command, not 32
        assert tb.router.counters["coalesced_reads"] - before == 31
        submitted = sum(
            node.client.qp.introspect()["submitted"] for node in tb.nodes
        ) - submitted_before
        assert submitted == 2

    def test_list_keyspaces_hides_migration_fragments(self, loaded):
        tb, _pairs_ = loaded

        def names():
            return (yield from tb.router.list_keyspaces(tb.thread_ctx(1)))

        assert "ks" in _run(tb, names())

    def test_unknown_sidx_raises(self, loaded):
        tb, _pairs_ = loaded

        def bad():
            with pytest.raises(SimulationError):
                yield from tb.router.sidx_point_query(
                    "ks", "nope", b"x", tb.thread_ctx(1)
                )
            return True

        assert _run(tb, bad())


class TestReplicatedReads:
    def test_replicas_serve_reads(self):
        tb = build_cluster_testbed(n_devices=3, seed=9, replicas=2)
        pairs = _pairs(512, seed=9)
        load_phase(tb.env, tb.adapter, [("r", pairs, tb.thread_ctx(0))])

        def ready():
            yield from tb.adapter.prepare_queries("r", tb.thread_ctx(0))

        tb.env.run(tb.env.process(ready()))

        def gets():
            ctx = tb.thread_ctx(1)
            for key, value in pairs[::17]:
                got = yield from tb.router.get("r", key, ctx)
                assert got == value
            return True

        assert _run(tb, gets())

    def test_delete_removes_from_all_replicas(self):
        tb = build_cluster_testbed(n_devices=2, seed=13, replicas=2)

        def flow():
            ctx = tb.thread_ctx(0)
            yield from tb.router.create_keyspace("d", ctx)
            yield from tb.router.open_keyspace("d", ctx)
            yield from tb.router.put("d", b"k1", b"v1", ctx)
            yield from tb.router.bulk_delete("d", [b"k1"], ctx)
            yield from tb.router.fsync("d", ctx)
            yield from tb.router.compact("d", ctx)
            yield from tb.router.wait_for_device("d", ctx)
            with pytest.raises(KeyNotFoundError):
                yield from tb.router.get("d", b"k1", ctx)
            return True

        assert _run(tb, flow())


class TestRouterGuards:
    def test_ring_devices_must_be_subset_of_fleet(self):
        from repro.cluster import ClusterRouter, HashRing

        tb = build_cluster_testbed(n_devices=2, seed=0)
        with pytest.raises(SimulationError):
            ClusterRouter(
                [(node.name, node.client) for node in tb.nodes],
                ring=HashRing(("dev0", "dev1", "dev9")),
            )

    def test_wait_rejects_foreign_tickets(self):
        tb = build_cluster_testbed(n_devices=2, seed=0)

        def bad():
            with pytest.raises(SimulationError):
                yield from tb.router.wait(object(), tb.thread_ctx(0))
            return True

        assert _run(tb, bad())


class TestDeterminism:
    def test_identical_runs_share_the_clock(self):
        def one_run():
            tb = build_cluster_testbed(n_devices=2, seed=21)
            pairs = _pairs(512, seed=21)
            load_phase(tb.env, tb.adapter, [("ks", pairs, tb.thread_ctx(0))])

            def ready():
                yield from tb.adapter.prepare_queries("ks", tb.thread_ctx(0))

            tb.env.run(tb.env.process(ready()))

            def gets():
                ctx = tb.thread_ctx(1)
                for key, _ in pairs[::7]:
                    yield from tb.router.get("ks", key, ctx)

            tb.env.run(tb.env.process(gets()))
            return tb.env.now, [n.ssd.stats.bytes_written for n in tb.nodes]

        assert one_run() == one_run()

    def test_device_rng_streams_are_fleet_independent(self):
        """dev0's name-seeded stream draws identically at any fleet size."""
        from repro.sim.rng import RngRegistry

        draws = []
        for _fleet in (2, 8):
            registry = RngRegistry(21)
            # consume other devices' streams first, like a bigger fleet does
            for i in range(_fleet):
                registry.stream(f"dev{i}.zones")
            draws.append(
                registry.stream("dev0.zones").integers(0, 1 << 30, 16).tolist()
            )
        assert draws[0] == draws[1]
