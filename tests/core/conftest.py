"""Shared fixtures for KV-CSD device tests."""

import numpy as np
import pytest

from repro.core import KvCsdClient, KvCsdDevice
from repro.host import ThreadCtx
from repro.nvme import PcieLink
from repro.sim import CpuPool, Environment
from repro.soc import SocBoard, SocSpec
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB, MiB


class CsdTestbed:
    """A host + KV-CSD device pair for integration tests."""

    def __init__(
        self,
        n_zones=64,
        zone_size=4 * MiB,
        n_channels=4,
        sort_budget=64 * MiB,
        membuf_bytes=192 * KiB,
        cluster_zones=4,
        host_cores=4,
        compaction_shards=1,
        block_cache_bytes=0,
        query_workers=0,
        bloom_bits_per_key=0,
        durable_meta=False,
    ):
        self.env = Environment()
        self.ssd = ZnsSsd(
            self.env,
            geometry=SsdGeometry(
                n_channels=n_channels, n_zones=n_zones, zone_size=zone_size
            ),
        )
        self.board = SocBoard(
            self.env,
            self.ssd,
            spec=SocSpec(
                sort_budget_bytes=sort_budget,
                compaction_shards=compaction_shards,
                block_cache_bytes=block_cache_bytes,
                query_workers=query_workers,
                bloom_bits_per_key=bloom_bits_per_key,
                durable_meta=durable_meta,
            ),
        )
        self.device = KvCsdDevice(
            self.board,
            rng=np.random.default_rng(42),
            membuf_bytes=membuf_bytes,
            cluster_zones=cluster_zones,
        )
        self.link = PcieLink(self.env, lanes=16)
        self.client = KvCsdClient(self.device, self.link)
        self.cpu = CpuPool(self.env, n_cores=host_cores)
        self.ctx = ThreadCtx(cpu=self.cpu, core=0)

    def run(self, gen):
        return self.env.run(self.env.process(gen))


@pytest.fixture
def tb():
    return CsdTestbed()


def make_pairs(n, key_bytes=16, value_bytes=32, prefix="k"):
    pairs = [
        (
            f"{prefix}-{i:012d}".encode().ljust(key_bytes, b"0")[:key_bytes],
            bytes([i % 256]) * value_bytes,
        )
        for i in range(n)
    ]
    # Guard against truncation collisions from long prefixes: tests that
    # want unique keys must actually get them.
    assert len({k for k, _ in pairs}) == n, "key truncation collided; widen key_bytes"
    return pairs
