"""The async command path: legacy equivalence, batching, and backpressure.

The pre-refactor client called ``KvCsdDevice`` operation methods directly,
hand-interleaving link transfers around each call.  The refactored client
builds a :class:`KvCommand` per operation and routes it through the
:class:`KvCommandDispatcher` via an async :class:`KvQueuePair`.

``_LegacyDirectClient`` below is a verbatim replica of the deleted
direct-method path, kept **only in this test** as the golden reference:
with one command in flight the command path must be byte- and
virtual-time-identical to it.  Nothing in ``src/`` may use this shape any
more — ``test_no_direct_device_operation_callers`` enforces that.
"""

import re
from pathlib import Path

import pytest

from repro.core import KvCsdClient, SidxConfig
from repro.core.costs import ClientCostModel
from repro.core.wire import pair_wire_size, split_into_messages
from repro.errors import KeyNotFoundError
from repro.nvme.kv_commands import KvGetCmd
from repro.obs.audit import check_queue_pair_accounting
from repro.obs.trace import trace_span

from tests.core.conftest import CsdTestbed, make_pairs

COMMAND_WIRE_BYTES = 64


class _LegacyDirectClient:
    """Verbatim replica of the pre-refactor direct-method client."""

    def __init__(self, device, link, costs=None, bulk_message_bytes=128 * 1024):
        self.device = device
        self.link = link
        self.costs = costs or ClientCostModel()
        self.bulk_message_bytes = bulk_message_bytes
        self.env = device.env

    def _cmd(self, op, **args):
        return trace_span(self.env, f"cmd.{op}", "command", **args)

    def _send_command(self, payload_bytes, ctx):
        yield from ctx.execute(
            self.costs.per_command + self.costs.pack_per_byte * payload_bytes
        )
        yield from self.link.send(COMMAND_WIRE_BYTES + payload_bytes)

    def _receive_result(self, result_bytes, ctx):
        yield from self.link.receive(result_bytes)
        yield from ctx.execute(self.costs.unpack_per_byte * result_bytes)

    def create_keyspace(self, name, ctx):
        with self._cmd("create_keyspace", keyspace=name):
            yield from self._send_command(len(name), ctx)
            yield from self.device.create_keyspace(name, ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def open_keyspace(self, name, ctx):
        with self._cmd("open_keyspace", keyspace=name):
            yield from self._send_command(len(name), ctx)
            yield from self.device.open_keyspace(name, ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def delete_keyspace(self, name, ctx):
        with self._cmd("delete_keyspace", keyspace=name):
            yield from self._send_command(len(name), ctx)
            yield from self.device.delete_keyspace(name, ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def list_keyspaces(self, ctx):
        with self._cmd("list_keyspaces"):
            yield from self._send_command(0, ctx)
            names = self.device.list_keyspaces()
            yield from self._receive_result(sum(len(n) for n in names) + 16, ctx)
        return names

    def keyspace_stat(self, name, ctx):
        with self._cmd("keyspace_stat", keyspace=name):
            yield from self._send_command(len(name), ctx)
            stat = self.device.keyspace_stat(name)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)
        return stat

    def bulk_put(self, keyspace, pairs, ctx):
        with self._cmd("bulk_put", keyspace=keyspace, pairs=len(pairs)):
            for message in split_into_messages(list(pairs), self.bulk_message_bytes):
                message_bytes = 4 + sum(pair_wire_size(k, v) for k, v in message)
                yield from self._send_command(message_bytes, ctx)
                yield from self.device.bulk_put(keyspace, message, message_bytes, ctx)
                yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def bulk_delete(self, keyspace, keys, ctx):
        with self._cmd("bulk_delete", keyspace=keyspace, keys=len(keys)):
            payload = sum(len(k) + 2 for k in keys)
            yield from self._send_command(payload, ctx)
            yield from self.device.bulk_delete(keyspace, list(keys), ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def fsync(self, keyspace, ctx):
        with self._cmd("fsync", keyspace=keyspace):
            yield from self._send_command(len(keyspace), ctx)
            yield from self.device.fsync(keyspace, ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def compact(self, keyspace, ctx, secondary_indexes=()):
        with self._cmd("compact", keyspace=keyspace, sidx=len(secondary_indexes)):
            yield from self._send_command(
                len(keyspace) + 24 * len(secondary_indexes), ctx
            )
            yield from self.device.compact(
                keyspace, ctx, sidx_configs=tuple(secondary_indexes)
            )
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def build_secondary_index(
        self, keyspace, index_name, value_offset, width, dtype="bytes", ctx=None
    ):
        config = SidxConfig(
            name=index_name, value_offset=value_offset, width=width, dtype=dtype
        )
        with self._cmd("build_sidx", keyspace=keyspace, index=index_name):
            yield from self._send_command(len(keyspace) + len(index_name) + 16, ctx)
            yield from self.device.build_sidx(keyspace, config, ctx)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def wait_for_device(self, keyspace, ctx):
        with self._cmd("wait_for_device", keyspace=keyspace):
            yield from self._send_command(len(keyspace), ctx)
            yield from self.device.wait_for_jobs(keyspace)
            yield from self._receive_result(COMMAND_WIRE_BYTES, ctx)

    def get(self, keyspace, key, ctx):
        with self._cmd("get", keyspace=keyspace):
            yield from self._send_command(len(key), ctx)
            value = yield from self.device.point_query(keyspace, key, ctx)
            yield from self._receive_result(len(value), ctx)
        return value

    def multi_get(self, keyspace, keys, ctx):
        with self._cmd("multi_get", keyspace=keyspace, keys=len(keys)):
            payload = sum(len(k) + 2 for k in keys)
            yield from self._send_command(payload, ctx)
            result = yield from self.device.multi_point_query(keyspace, list(keys), ctx)
            result_bytes = sum(len(k) + len(v) for k, v in result.items())
            yield from self._receive_result(result_bytes + COMMAND_WIRE_BYTES, ctx)
        return result

    def range_query(self, keyspace, lo, hi, ctx):
        with self._cmd("range_query", keyspace=keyspace):
            yield from self._send_command(len(lo) + len(hi), ctx)
            result = yield from self.device.range_query(keyspace, lo, hi, ctx)
            result_bytes = sum(len(k) + len(v) for k, v in result)
            yield from self._receive_result(result_bytes + COMMAND_WIRE_BYTES, ctx)
        return result

    def sidx_range_query(self, keyspace, index_name, lo_raw, hi_raw, ctx):
        with self._cmd("sidx_range_query", keyspace=keyspace, index=index_name):
            yield from self._send_command(
                len(lo_raw) + len(hi_raw) + len(index_name), ctx
            )
            result = yield from self.device.sidx_range_query(
                keyspace, index_name, lo_raw, hi_raw, ctx
            )
            result_bytes = sum(len(k) + len(v) for k, v in result)
            yield from self._receive_result(result_bytes + COMMAND_WIRE_BYTES, ctx)
        return result

    def sidx_point_query(self, keyspace, index_name, skey_raw, ctx):
        with self._cmd("sidx_point_query", keyspace=keyspace, index=index_name):
            yield from self._send_command(len(skey_raw) + len(index_name), ctx)
            result = yield from self.device.sidx_point_query(
                keyspace, index_name, skey_raw, ctx
            )
            result_bytes = sum(len(k) + len(v) for k, v in result)
            yield from self._receive_result(result_bytes + COMMAND_WIRE_BYTES, ctx)
        return result


def _mixed_workload(tb, client):
    """Every client operation, with a checkpoint after each phase.

    Returns (checkpoints, results): checkpoints are
    ``(label, env.now, bytes_tx, bytes_rx)`` tuples, results the collected
    operation return values.
    """
    import struct

    pairs = []
    for i in range(3000):
        pairs.append((f"k-{i:012d}".encode(), struct.pack("<I", i % 37) + bytes(28)))
    sidx = SidxConfig("tag", value_offset=0, width=4, dtype="u32")
    checkpoints = []
    results = []

    def mark(label):
        checkpoints.append((label, tb.env.now, tb.link.bytes_tx, tb.link.bytes_rx))

    def workload():
        ctx = tb.ctx
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        mark("open")
        yield from client.bulk_put("ks", pairs, ctx)
        mark("bulk_put")
        yield from client.fsync("ks", ctx)
        mark("fsync")
        yield from client.bulk_delete("ks", [k for k, _ in pairs[:100]], ctx)
        mark("bulk_delete")
        yield from client.compact("ks", ctx, secondary_indexes=[sidx])
        yield from client.wait_for_device("ks", ctx)
        mark("compact")
        results.append((yield from client.list_keyspaces(ctx)))
        stat = yield from client.keyspace_stat("ks", ctx)
        results.append((stat["state"], stat["secondary_indexes"]))
        mark("stat")
        for key, _ in pairs[200:240]:
            results.append((yield from client.get("ks", key, ctx)))
        mark("get")
        results.append(
            (yield from client.multi_get("ks", [k for k, _ in pairs[500:530]], ctx))
        )
        mark("multi_get")
        results.append(
            (yield from client.range_query("ks", pairs[600][0], pairs[640][0], ctx))
        )
        mark("range")
        results.append(
            sorted(
                (
                    yield from client.sidx_range_query(
                        "ks", "tag", struct.pack("<I", 5), struct.pack("<I", 7), ctx
                    )
                )
            )
        )
        results.append(
            sorted(
                (
                    yield from client.sidx_point_query(
                        "ks", "tag", struct.pack("<I", 11), ctx
                    )
                )
            )
        )
        mark("sidx")
        yield from client.create_keyspace("scratch", ctx)
        yield from client.delete_keyspace("scratch", ctx)
        mark("lifecycle")

    tb.run(workload())
    return checkpoints, results


def test_command_path_equivalent_to_legacy_direct_path():
    """The tentpole's regression guarantee: at queue depth 1 the dispatcher
    path reproduces the deleted direct-method path exactly — same results,
    same virtual-clock instants, same bytes on the wire, same media I/O."""
    tb_new = CsdTestbed()
    new_cp, new_results = _mixed_workload(tb_new, tb_new.client)

    tb_old = CsdTestbed()
    legacy = _LegacyDirectClient(tb_old.device, tb_old.link)
    old_cp, old_results = _mixed_workload(tb_old, legacy)

    assert new_results == old_results
    # Exact equality, not approx: the refactor must not move a single event.
    assert new_cp == old_cp
    assert tb_new.ssd.stats.bytes_read == tb_old.ssd.stats.bytes_read
    assert tb_new.ssd.stats.bytes_written == tb_old.ssd.stats.bytes_written
    assert (
        tb_new.device.stats.as_dict()["counters"]
        == tb_old.device.stats.as_dict()["counters"]
    )


def test_no_direct_device_operation_callers():
    """Outside the dispatcher, no production code invokes device operation
    methods — the command path is the only path."""
    ops = (
        "create_keyspace|open_keyspace|delete_keyspace|list_keyspaces"
        "|keyspace_stat|bulk_put|bulk_delete|fsync|compact|build_sidx"
        "|wait_for_jobs|point_query|multi_point_query|range_query"
        "|sidx_range_query|sidx_point_query"
    )
    pattern = re.compile(rf"\bdevice\.({ops})\(")
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if path.name == "dispatch.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert offenders == []


# -- async API -----------------------------------------------------------------
def _loaded_testbed(**kwargs):
    tb = CsdTestbed(**kwargs)
    pairs = make_pairs(2000)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    return tb, pairs


def test_get_async_returns_ticket_and_value():
    tb, pairs = _loaded_testbed()

    def proc():
        tickets = []
        for key, _ in pairs[:8]:
            tickets.append((yield from tb.client.get_async("ks", key, tb.ctx)))
        values = []
        for ticket in tickets:
            completion = yield from tb.client.wait(ticket, tb.ctx)
            values.append(completion.value)
        return values

    values = tb.run(proc())
    assert values == [v for _, v in pairs[:8]]
    qp = tb.client.qp
    assert qp.inflight == 0
    assert qp.reaped == qp.completed


def test_put_async_then_wait_persists():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        tickets = []
        for i in range(16):
            ticket = yield from tb.client.put_async(
                "ks", b"key-%04d" % i, b"v" * 32, tb.ctx
            )
            tickets.append(ticket)
        for ticket in tickets:
            yield from tb.client.wait(ticket, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        return (yield from tb.client.get("ks", b"key-0007", tb.ctx))

    assert tb.run(proc()) == b"v" * 32


def test_submit_many_preserves_order():
    tb, pairs = _loaded_testbed(query_workers=2)
    keys = [k for k, _ in pairs[100:120]]

    def proc():
        commands = [KvGetCmd(keyspace="ks", key=k) for k in keys]
        return (yield from tb.client.submit_many(commands, tb.ctx))

    completions = tb.run(proc())
    assert [c.value for c in completions] == [v for k, v in pairs[100:120]]
    assert all(c.ok for c in completions)


def test_pipelined_gets_complete_faster_than_serial():
    """QD>1 from one thread overlaps device work: the whole point of the
    async path."""

    def run_gets(pipelined):
        tb, pairs = _loaded_testbed(query_workers=4)
        keys = [k for k, _ in pairs[:32]]
        t0 = tb.env.now

        def serial():
            for key in keys:
                yield from tb.client.get("ks", key, tb.ctx)

        def batched():
            commands = [KvGetCmd(keyspace="ks", key=k) for k in keys]
            yield from tb.client.submit_many(commands, tb.ctx)

        tb.run(batched() if pipelined else serial())
        return tb.env.now - t0

    assert run_gets(pipelined=True) < run_gets(pipelined=False)


# -- error isolation (satellite: batch error-completion semantics) -------------
def test_mid_batch_error_does_not_poison_queue_pair():
    tb, pairs = _loaded_testbed()
    keys = [pairs[0][0], b"no-such-key-0000", pairs[1][0], pairs[2][0]]

    def proc():
        commands = [KvGetCmd(keyspace="ks", key=k) for k in keys]
        completions = yield from tb.client.submit_many(commands, tb.ctx)
        # the queue pair survives: a later synchronous command still works
        follow_up = yield from tb.client.get("ks", pairs[3][0], tb.ctx)
        return completions, follow_up

    completions, follow_up = tb.run(proc())
    assert [c.ok for c in completions] == [True, False, True, True]
    assert completions[1].status == "KeyNotFoundError"
    assert isinstance(completions[1].error, KeyNotFoundError)
    assert completions[0].value == pairs[0][1]
    assert completions[2].value == pairs[1][1]
    assert completions[3].value == pairs[2][1]
    assert follow_up == pairs[3][1]
    qp = tb.client.qp
    assert qp.inflight == 0
    assert qp.submitted == qp.completed
    assert check_queue_pair_accounting(qp) == []


def test_sync_error_still_raises_original_exception():
    tb, _pairs = _loaded_testbed()

    def proc():
        yield from tb.client.get("ks", b"definitely-missing", tb.ctx)

    with pytest.raises(KeyNotFoundError):
        tb.run(proc())
    # the error ticket was reaped; accounting stays consistent
    assert check_queue_pair_accounting(tb.client.qp) == []


# -- backpressure (satellite: queue depth limits) ------------------------------
def test_post_blocks_at_full_depth():
    tb, pairs = _loaded_testbed()
    small = KvCsdClient(tb.device, tb.link, queue_depth=2)
    depth_seen = []

    def proc():
        tickets = []
        for key, _ in pairs[:6]:
            ticket = yield from small.get_async("ks", key, tb.ctx)
            depth_seen.append(small.qp.inflight)
            tickets.append(ticket)
        for ticket in tickets:
            yield from small.wait(ticket, tb.ctx)

    tb.run(proc())
    assert max(depth_seen) <= 2
    assert small.qp.submitted == 6
    assert small.qp.completed == 6
    assert check_queue_pair_accounting(small.qp) == []


def test_try_post_returns_none_when_full():
    tb, pairs = _loaded_testbed()
    small = KvCsdClient(tb.device, tb.link, queue_depth=1)

    def proc():
        first = yield from small.qp.try_post(
            KvGetCmd(keyspace="ks", key=pairs[0][0]), tb.ctx
        )
        assert first is not None
        # queue full: try_post must refuse without blocking
        second = yield from small.qp.try_post(
            KvGetCmd(keyspace="ks", key=pairs[1][0]), tb.ctx
        )
        assert second is None
        yield from small.qp.wait(first, tb.ctx)
        third = yield from small.qp.try_post(
            KvGetCmd(keyspace="ks", key=pairs[1][0]), tb.ctx
        )
        assert third is not None
        completion = yield from small.qp.wait(third, tb.ctx)
        return completion.value

    assert tb.run(proc()) == pairs[1][1]


def test_poll_reaps_ready_completions_without_blocking():
    tb, pairs = _loaded_testbed()
    base = tb.client.qp.reaped

    def proc():
        tickets = []
        for key, _ in pairs[:4]:
            tickets.append((yield from tb.client.get_async("ks", key, tb.ctx)))
        # nothing completed yet at the instant of the last post
        reaped = []
        while len(reaped) < 4:
            reaped.extend(tb.client.qp.poll())
            if len(reaped) < 4:
                yield tickets[len(reaped)].event
        return reaped

    reaped = tb.run(proc())
    assert len(reaped) == 4
    assert len({t.cid for t in reaped}) == 4  # each reported exactly once
    assert all(t.completion.ok for t in reaped)
    qp = tb.client.qp
    assert qp.reaped - base == 4
    assert qp.reaped == qp.completed
    assert qp.unreaped == 0


def test_auditor_covers_host_queue_pair_accounting():
    tb, _pairs = _loaded_testbed()
    from repro.obs.audit import InvariantAuditor

    auditor = InvariantAuditor(tb.device)
    report = auditor.run("test")
    assert report.ok
    # corrupt the host QP's counters: the queue-sanity invariant must trip
    tb.client.qp.submitted += 3
    report = auditor.run("test")
    assert not report.ok
    assert any(
        v.invariant == "nvme_queue_sanity" and "host-kv" in v.detail
        for v in report.violations
    )
