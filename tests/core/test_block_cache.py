"""Unit and integration tests for the SoC DRAM block cache.

The LRU layer under the query engine must (a) behave like a byte-bounded
LRU, (b) actually remove repeated SSD reads, and (c) never serve stale
bytes once a zone has been released and recycled.
"""

import pytest

from repro.core.block_cache import BlockCache
from repro.errors import SimulationError

from tests.core.conftest import CsdTestbed, make_pairs


def ptr(zone, offset=0, length=64):
    return (zone, offset, length)  # a ZonePointer triple


# ------------------------------------------------------------------- unit LRU
def test_cache_rejects_non_positive_capacity():
    with pytest.raises(SimulationError):
        BlockCache(0)


def test_hit_miss_and_counts():
    cache = BlockCache(1024)
    p = ptr(1)
    assert cache.get(p) is None
    cache.put(p, b"x" * 64)
    assert cache.get(p) == b"x" * 64
    assert cache.lookups.hits.value == 1
    assert cache.lookups.misses.value == 1
    assert cache.hit_rate == 0.5


def test_eviction_is_lru_by_bytes():
    cache = BlockCache(128)
    a, b, c = ptr(1, 0), ptr(1, 64), ptr(2, 0)
    cache.put(a, b"a" * 64)
    cache.put(b, b"b" * 64)
    assert cache.get(a) is not None  # refresh a: b becomes LRU
    cache.put(c, b"c" * 64)  # over capacity -> evict b
    assert cache.get(b) is None
    assert cache.get(a) is not None
    assert cache.get(c) is not None
    assert cache.used_bytes <= cache.capacity_bytes


def test_put_replaces_existing_entry_without_leaking_bytes():
    cache = BlockCache(256)
    p = ptr(3)
    cache.put(p, b"x" * 64)
    cache.put(p, b"y" * 64)
    assert cache.used_bytes == 64
    assert cache.get(p) == b"y" * 64


def test_oversized_blob_is_not_cached():
    cache = BlockCache(32)
    p = ptr(4)
    cache.put(p, b"z" * 64)
    assert len(cache) == 0
    assert cache.get(p) is None


def test_invalidate_zone_drops_only_that_zone():
    cache = BlockCache(1024)
    cache.put(ptr(1, 0), b"a" * 16)
    cache.put(ptr(1, 16), b"b" * 16)
    cache.put(ptr(2, 0), b"c" * 16)
    cache.invalidate_zone(1)
    assert cache.get(ptr(1, 0)) is None
    assert cache.get(ptr(1, 16)) is None
    assert cache.get(ptr(2, 0)) == b"c" * 16
    assert cache.report()["invalidations"] == 2.0


def test_clear_empties_everything():
    cache = BlockCache(1024)
    cache.put(ptr(1), b"a" * 16)
    cache.clear()
    assert len(cache) == 0
    assert cache.used_bytes == 0


# -------------------------------------------------------------- device level
def load_compact(tb, name, pairs):
    def proc():
        yield from tb.client.create_keyspace(name, tb.ctx)
        yield from tb.client.open_keyspace(name, tb.ctx)
        yield from tb.client.bulk_put(name, pairs, tb.ctx)
        yield from tb.client.compact(name, tb.ctx)
        yield from tb.client.wait_for_device(name, tb.ctx)

    tb.run(proc())


def test_repeated_gets_hit_the_cache_and_read_less():
    pairs = make_pairs(2000)
    tb = CsdTestbed(block_cache_bytes=8 * 1024 * 1024)
    load_compact(tb, "ks", pairs)
    key, value = pairs[123]

    def one_get():
        got = yield from tb.client.get("ks", key, tb.ctx)
        assert got == value

    tb.run(one_get())
    cold_reads = tb.ssd.stats.bytes_read
    misses = tb.device.block_cache.lookups.misses.value
    tb.run(one_get())
    assert tb.device.block_cache.lookups.hits.value > 0
    assert tb.device.block_cache.lookups.misses.value == misses
    assert tb.ssd.stats.bytes_read == cold_reads  # second GET fully cached


def test_cache_disabled_by_default():
    tb = CsdTestbed()
    assert tb.device.block_cache is None


def test_cache_never_stale_after_zone_reuse():
    # Fill, query (warming the cache), delete the keyspace (its zones are
    # released and recycled), then recreate with different values: every
    # GET must see the new bytes, never the cached old extents.
    tb = CsdTestbed(block_cache_bytes=8 * 1024 * 1024)
    old_pairs = make_pairs(2000, prefix="old")
    load_compact(tb, "ks", old_pairs)

    def get(name, key):
        result = []

        def proc():
            got = yield from tb.client.get(name, key, tb.ctx)
            result.append(got)

        tb.run(proc())
        return result[0]

    for key, value in old_pairs[::200]:
        assert get("ks", key) == value

    def drop():
        yield from tb.client.delete_keyspace("ks", tb.ctx)

    tb.run(drop())
    assert tb.device.block_cache.report()["invalidations"] > 0

    new_pairs = [(k, bytes([(v[0] + 1) % 256]) * len(v)) for k, v in old_pairs]
    load_compact(tb, "ks", new_pairs)
    for key, value in new_pairs[::100]:
        assert get("ks", key) == value
