"""Tests for the client library: wire accounting and data-movement claims."""

import pytest

from repro.core import BULK_MESSAGE_BYTES, SidxConfig
from repro.errors import SecondaryIndexError

from tests.core.conftest import CsdTestbed, make_pairs


def test_bulk_put_splits_into_messages():
    tb = CsdTestbed()
    pairs = make_pairs(6000)  # ~2570 pairs per 128KB message -> 3 messages

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        sent_before = tb.link.bytes_tx
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        return tb.link.bytes_tx - sent_before

    sent = tb.run(proc())
    payload = sum(16 + 32 + 6 for _ in pairs)
    # wire bytes ~ payload + per-message headers (3 messages)
    assert payload <= sent <= payload + 10 * 200


def test_only_results_cross_pcie_on_queries():
    """The paper's central data-movement claim: query processing stays in
    the device; the link carries results, not index/data blocks."""
    tb = CsdTestbed()
    pairs = make_pairs(4000)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    device_reads_before = tb.ssd.stats.bytes_read
    rx_before = tb.link.bytes_rx

    def query():
        for key, _ in pairs[:50]:
            yield from tb.client.get("ks", key, tb.ctx)

    tb.run(query())
    pcie_rx = tb.link.bytes_rx - rx_before
    device_reads = tb.ssd.stats.bytes_read - device_reads_before
    returned = 50 * 32
    # Device-internal reads (PIDX blocks + value pages) dwarf the link
    # traffic, which is close to the returned values.
    assert device_reads > 10 * pcie_rx
    assert pcie_rx < returned + 50 * 128  # values + per-reply framing


def test_custom_bulk_message_size():
    tb_small = CsdTestbed()
    tb_small.client.bulk_message_bytes = 4096
    pairs = make_pairs(1000)

    def proc(tb):
        def gen():
            yield from tb.client.create_keyspace("ks", tb.ctx)
            yield from tb.client.open_keyspace("ks", tb.ctx)
            t0 = tb.env.now
            yield from tb.client.bulk_put("ks", pairs, tb.ctx)
            return tb.env.now - t0

        return tb.run(gen())

    t_small = proc(tb_small)
    tb_big = CsdTestbed()
    t_big = proc(tb_big)
    assert t_small > t_big  # smaller messages -> more per-command overhead


def test_combined_compaction_builds_indexes_inline():
    tb = CsdTestbed()
    pairs = make_pairs(3000, value_bytes=32)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact(
            "ks",
            tb.ctx,
            secondary_indexes=[SidxConfig("tag", value_offset=0, width=4, dtype="u32")],
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)
        stat = yield from tb.client.keyspace_stat("ks", tb.ctx)
        return stat

    stat = tb.run(proc())
    assert stat["secondary_indexes"] == ["tag"]
    assert tb.device.stats.counter("sidx_builds_inline").value == 1
    assert tb.device.stats.counter("sidx_builds").value == 0


def test_combined_compaction_falls_back_when_dram_tight():
    # Sort budget smaller than the value volume: the device must fall back
    # to separate per-index scans, as the paper anticipates.
    tb = CsdTestbed(sort_budget=64 * 1024)
    pairs = make_pairs(4000, value_bytes=64)  # 256KB of values > 64KB budget

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact(
            "ks",
            tb.ctx,
            secondary_indexes=[SidxConfig("tag", value_offset=0, width=4, dtype="u32")],
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)
        stat = yield from tb.client.keyspace_stat("ks", tb.ctx)
        return stat

    stat = tb.run(proc())
    assert stat["secondary_indexes"] == ["tag"]
    assert tb.device.stats.counter("sidx_builds_inline").value == 0
    assert tb.device.stats.counter("sidx_builds").value == 1


def test_combined_compaction_rejects_duplicate_index():
    tb = CsdTestbed()
    pairs = make_pairs(100)
    config = SidxConfig("tag", value_offset=0, width=4, dtype="u32")

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact(
            "ks", tb.ctx, secondary_indexes=[config, config]
        )

    with pytest.raises(SecondaryIndexError):
        tb.run(proc())


def test_combined_index_queries_match_separate():
    import struct

    def load(combined: bool):
        tb = CsdTestbed()
        pairs = []
        for i in range(1500):
            pairs.append(
                (f"k-{i:08d}".encode(), struct.pack("<I", i % 37) + bytes(12))
            )
        config = SidxConfig("tag", value_offset=0, width=4, dtype="u32")

        def proc():
            yield from tb.client.create_keyspace("ks", tb.ctx)
            yield from tb.client.open_keyspace("ks", tb.ctx)
            yield from tb.client.bulk_put("ks", pairs, tb.ctx)
            if combined:
                yield from tb.client.compact("ks", tb.ctx, secondary_indexes=[config])
                yield from tb.client.wait_for_device("ks", tb.ctx)
            else:
                yield from tb.client.compact("ks", tb.ctx)
                yield from tb.client.wait_for_device("ks", tb.ctx)
                yield from tb.client.build_secondary_index(
                    "ks", "tag", 0, 4, "u32", ctx=tb.ctx
                )
                yield from tb.client.wait_for_device("ks", tb.ctx)
            result = yield from tb.client.sidx_range_query(
                "ks", "tag", struct.pack("<I", 5), struct.pack("<I", 8), tb.ctx
            )
            return sorted(result)

        return tb.run(proc())

    assert load(combined=True) == load(combined=False)
