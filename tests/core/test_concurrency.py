"""Concurrency behaviour of the device: latency hiding and deferred deletes."""

import pytest

from repro.core.keyspace import KeyspaceState

from tests.core.conftest import CsdTestbed, make_pairs


def test_queries_on_one_keyspace_while_another_compacts():
    """The whole point of device-side async compaction: foreground work on
    keyspace A proceeds while keyspace B compacts in the background."""
    tb = CsdTestbed()
    pairs_a = make_pairs(1000, prefix="a")
    pairs_b = make_pairs(20_000, prefix="b")  # long compaction

    def setup():
        for name, pairs in (("a", pairs_a), ("b", pairs_b)):
            yield from tb.client.create_keyspace(name, tb.ctx)
            yield from tb.client.open_keyspace(name, tb.ctx)
            yield from tb.client.bulk_put(name, pairs, tb.ctx)
        yield from tb.client.compact("a", tb.ctx)
        yield from tb.client.wait_for_device("a", tb.ctx)

    tb.run(setup())

    results = {}

    def queries_on_a():
        yield from tb.client.compact("b", tb.ctx)  # B compacts in background
        t0 = tb.env.now
        for key, _ in pairs_a[::100]:
            yield from tb.client.get("a", key, tb.ctx)
        results["query_time"] = tb.env.now - t0
        results["b_state_during"] = tb.device.keyspaces["b"].state
        yield from tb.client.wait_for_device("b", tb.ctx)
        results["b_state_after"] = tb.device.keyspaces["b"].state

    tb.run(queries_on_a())
    assert results["b_state_during"] == KeyspaceState.COMPACTING
    assert results["b_state_after"] == KeyspaceState.COMPACTED

    # Baseline: the same queries with no concurrent compaction.
    tb2 = CsdTestbed()

    def setup2():
        yield from tb2.client.create_keyspace("a", tb2.ctx)
        yield from tb2.client.open_keyspace("a", tb2.ctx)
        yield from tb2.client.bulk_put("a", pairs_a, tb2.ctx)
        yield from tb2.client.compact("a", tb2.ctx)
        yield from tb2.client.wait_for_device("a", tb2.ctx)
        t0 = tb2.env.now
        for key, _ in pairs_a[::100]:
            yield from tb2.client.get("a", key, tb2.ctx)
        results["baseline"] = tb2.env.now - t0

    tb2.run(setup2())
    # Queries contend with the compaction for SoC cores/channels but are
    # not *blocked* by it: within a small multiple of the baseline.
    assert results["query_time"] < 5 * results["baseline"]


def test_delete_keyspace_during_compaction_is_deferred():
    tb = CsdTestbed()
    pairs = make_pairs(10_000)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        free_before = tb.device.zone_manager.free_zone_count
        yield from tb.client.compact("ks", tb.ctx)
        assert tb.device.keyspaces["ks"].state == KeyspaceState.COMPACTING
        # delete while the compaction job is still running
        yield from tb.client.delete_keyspace("ks", tb.ctx)
        return free_before

    tb.run(proc())
    assert "ks" not in tb.device.keyspaces
    # every zone came back (logs, sorted data, indexes, temp)
    total_zones = tb.device.zone_manager.free_zone_count
    assert total_zones == tb.ssd.geometry.n_zones - len(
        tb.device._metadata_cluster.zone_ids
    )


def test_many_keyspaces_compact_concurrently():
    tb = CsdTestbed(n_zones=128)
    n_ks = 8
    per = 2000

    def load():
        for i in range(n_ks):
            name = f"ks-{i}"
            yield from tb.client.create_keyspace(name, tb.ctx)
            yield from tb.client.open_keyspace(name, tb.ctx)
            yield from tb.client.bulk_put(
                name, make_pairs(per, key_bytes=24, prefix=name), tb.ctx
            )

    tb.run(load())

    def compact_all():
        t0 = tb.env.now
        for i in range(n_ks):
            yield from tb.client.compact(f"ks-{i}", tb.ctx)
        kick_time = tb.env.now - t0
        for i in range(n_ks):
            yield from tb.client.wait_for_device(f"ks-{i}", tb.ctx)
        return kick_time, tb.env.now - t0

    kick_time, total = tb.run(compact_all())
    durations = [
        tb.device.job_durations[(f"ks-{i}", "compaction")] for i in range(n_ks)
    ]
    # Kicks (final membuf flush + dispatch) cost far less than the sort work
    # they trigger, and the compactions overlap rather than serialise.
    assert kick_time < 0.5 * sum(durations)
    assert total < sum(durations)

    def verify():
        for i in (0, n_ks - 1):
            name = f"ks-{i}"
            pairs = make_pairs(per, key_bytes=24, prefix=name)
            value = yield from tb.client.get(name, pairs[77][0], tb.ctx)
            assert value == pairs[77][1]

    tb.run(verify())


def test_write_lock_serializes_shared_keyspace_ingestion():
    """Two threads into one keyspace take ~as long as one thread with the
    same total data (the device is the bottleneck, per Figure 7a)."""
    def run(n_threads):
        tb = CsdTestbed()
        total = 4096
        per = total // n_threads

        def setup():
            yield from tb.client.create_keyspace("ks", tb.ctx)
            yield from tb.client.open_keyspace("ks", tb.ctx)

        tb.run(setup())
        t0 = tb.env.now

        def writer(tid):
            pairs = make_pairs(per, prefix=f"t{tid}")
            yield from tb.client.bulk_put("ks", pairs, tb.ctx.pinned(tid % 4))

        procs = [tb.env.process(writer(t)) for t in range(n_threads)]
        tb.env.run()
        return tb.env.now - t0

    t1 = run(1)
    t4 = run(4)
    assert t4 > 0.7 * t1  # no 4x speedup: ingestion serialises in the device
