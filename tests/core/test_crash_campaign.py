"""The randomized crash-injection campaign, at CI scale.

Every sampled power-cut/torn-append point must remount auditor-clean with
all acknowledged data byte-identical and persisted blooms intact — the
same harness `repro crash-bench` runs at full scale.
"""

from repro.bench.crash import CrashBenchConfig, run_crash_bench


def test_smoke_campaign_every_point_clean():
    config = CrashBenchConfig.smoke()
    result = run_crash_bench(config)
    assert result.failed_points == []
    assert result.clean_points == result.points >= config.min_points
    assert result.event_points and result.torn_points
    for check in result.checks():
        assert check.passed, f"{check.description}: {check.observed}"
    # every workload contributed crash points
    assert set(result.per_workload) == set(config.workloads)
    # recovery-time curves exist for both mount flavors at every volume
    assert len(result.curve) == 2 * len(config.curve_volumes)
    assert all(p["mount_seconds"] > 0 for p in result.curve)
    # the JSON document is self-contained and serializable
    doc = result.to_json()
    assert doc["campaign"]["clean_fraction"] == 1.0
    assert doc["mount"]["max_seconds"] > 0
