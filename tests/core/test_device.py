"""Integration tests: the full KV-CSD insert/compact/index/query pipeline."""

import struct

import pytest

from repro.core.keyspace import KeyspaceState
from repro.errors import (
    KeyNotFoundError,
    KeyspaceExistsError,
    KeyspaceNotFoundError,
    KeyspaceStateError,
    SecondaryIndexError,
)

from tests.core.conftest import CsdTestbed, make_pairs


def setup_keyspace(tb, name="ks", pairs=None):
    def proc():
        yield from tb.client.create_keyspace(name, tb.ctx)
        yield from tb.client.open_keyspace(name, tb.ctx)
        if pairs:
            yield from tb.client.bulk_put(name, pairs, tb.ctx)

    tb.run(proc())


def compact_and_wait(tb, name="ks"):
    def proc():
        yield from tb.client.compact(name, tb.ctx)
        yield from tb.client.wait_for_device(name, tb.ctx)

    tb.run(proc())


# ------------------------------------------------------------------ lifecycle
def test_keyspace_lifecycle_states(tb):
    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        s1 = tb.device.keyspaces["ks"].state
        yield from tb.client.open_keyspace("ks", tb.ctx)
        s2 = tb.device.keyspaces["ks"].state
        yield from tb.client.bulk_put("ks", make_pairs(10), tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        s3 = tb.device.keyspaces["ks"].state
        yield from tb.client.wait_for_device("ks", tb.ctx)
        s4 = tb.device.keyspaces["ks"].state
        return s1, s2, s3, s4

    s1, s2, s3, s4 = tb.run(proc())
    assert s1 == KeyspaceState.EMPTY
    assert s2 == KeyspaceState.WRITABLE
    assert s3 in (KeyspaceState.COMPACTING, KeyspaceState.COMPACTED)
    assert s4 == KeyspaceState.COMPACTED


def test_duplicate_keyspace_rejected(tb):
    setup_keyspace(tb)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)

    with pytest.raises(KeyspaceExistsError):
        tb.run(proc())


def test_unknown_keyspace_rejected(tb):
    def proc():
        yield from tb.client.open_keyspace("ghost", tb.ctx)

    with pytest.raises(KeyspaceNotFoundError):
        tb.run(proc())


def test_write_to_compacted_keyspace_rejected(tb):
    setup_keyspace(tb, pairs=make_pairs(10))
    compact_and_wait(tb)

    def proc():
        yield from tb.client.bulk_put("ks", make_pairs(5), tb.ctx)

    with pytest.raises(KeyspaceStateError):
        tb.run(proc())


def test_query_before_compaction_rejected(tb):
    setup_keyspace(tb, pairs=make_pairs(10))

    def proc():
        yield from tb.client.get("ks", make_pairs(1)[0][0], tb.ctx)

    with pytest.raises(KeyspaceStateError):
        tb.run(proc())


def test_delete_keyspace_reclaims_zones(tb):
    free_before = tb.device.zone_manager.free_zone_count
    setup_keyspace(tb, pairs=make_pairs(5000))
    compact_and_wait(tb)
    assert tb.device.zone_manager.free_zone_count < free_before

    def proc():
        yield from tb.client.delete_keyspace("ks", tb.ctx)

    tb.run(proc())
    assert tb.device.zone_manager.free_zone_count == free_before
    assert "ks" not in tb.device.keyspaces


def test_list_keyspaces(tb):
    for name in ("b-ks", "a-ks"):
        setup_keyspace(tb, name=name)

    def proc():
        return (yield from tb.client.list_keyspaces(tb.ctx))

    assert tb.run(proc()) == ["a-ks", "b-ks"]


def test_keyspace_stat(tb):
    pairs = make_pairs(100)
    setup_keyspace(tb, pairs=pairs)

    def proc():
        return (yield from tb.client.keyspace_stat("ks", tb.ctx))

    stat = tb.run(proc())
    assert stat["state"] == "writable"
    assert stat["n_pairs"] == 100
    assert stat["min_key"] == pairs[0][0]
    assert stat["max_key"] == pairs[-1][0]


# ------------------------------------------------------------------ data path
def test_full_pipeline_point_queries(tb):
    pairs = make_pairs(3000)
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)

    def proc():
        values = []
        for key, _ in pairs[::500]:
            v = yield from tb.client.get("ks", key, tb.ctx)
            values.append(v)
        return values

    values = tb.run(proc())
    expected = [v for _, v in pairs[::500]]
    assert values == expected


def test_missing_key_raises(tb):
    setup_keyspace(tb, pairs=make_pairs(100))
    compact_and_wait(tb)

    def proc():
        yield from tb.client.get("ks", b"absent-key-0000", tb.ctx)

    with pytest.raises(KeyNotFoundError):
        tb.run(proc())


def test_range_query_returns_sorted_slice(tb):
    pairs = make_pairs(2000)
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)
    lo = pairs[100][0]
    hi = pairs[150][0]

    def proc():
        return (yield from tb.client.range_query("ks", lo, hi, tb.ctx))

    result = tb.run(proc())
    assert [k for k, _ in result] == [k for k, _ in pairs[100:150]]
    assert all(v == pairs[100 + i][1] for i, (_, v) in enumerate(result))


def test_unsorted_insertion_order_compacts_sorted(tb):
    import random

    pairs = make_pairs(1000)
    shuffled = pairs[:]
    random.Random(7).shuffle(shuffled)
    setup_keyspace(tb, pairs=shuffled)
    compact_and_wait(tb)

    def proc():
        return (yield from tb.client.range_query("ks", pairs[0][0], pairs[-1][0] + b"z", tb.ctx))

    result = tb.run(proc())
    assert [k for k, _ in result] == [k for k, _ in pairs]


def test_duplicate_keys_newest_wins(tb):
    setup_keyspace(tb)

    def proc():
        yield from tb.client.bulk_put("ks", [(b"dup-key", b"v1")], tb.ctx)
        yield from tb.client.bulk_put("ks", [(b"dup-key", b"v2")], tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        v = yield from tb.client.get("ks", b"dup-key", tb.ctx)
        n = tb.device.keyspaces["ks"].n_pairs
        return v, n

    v, n = tb.run(proc())
    assert v == b"v2"
    assert n == 1


def test_bulk_delete_tombstones_applied_at_compaction(tb):
    pairs = make_pairs(500)
    setup_keyspace(tb, pairs=pairs)

    def proc():
        yield from tb.client.bulk_delete("ks", [pairs[10][0], pairs[20][0]], tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(proc())

    def check():
        kept = yield from tb.client.get("ks", pairs[11][0], tb.ctx)
        try:
            yield from tb.client.get("ks", pairs[10][0], tb.ctx)
            gone = False
        except KeyNotFoundError:
            gone = True
        return kept, gone

    kept, gone = tb.run(check())
    assert kept == pairs[11][1]
    assert gone
    assert tb.device.keyspaces["ks"].n_pairs == 498


def test_compaction_is_asynchronous(tb):
    pairs = make_pairs(20_000)
    setup_keyspace(tb, pairs=pairs)

    def proc():
        t0 = tb.env.now
        yield from tb.client.compact("ks", tb.ctx)
        t_submit = tb.env.now - t0
        yield from tb.client.wait_for_device("ks", tb.ctx)
        t_total = tb.env.now - t0
        return t_submit, t_total

    t_submit, t_total = tb.run(proc())
    # The compact() call returns long before the compaction completes.
    assert t_submit < t_total / 3


def test_compaction_frees_log_zones(tb):
    pairs = make_pairs(5000)
    setup_keyspace(tb, pairs=pairs)
    ks = tb.device.keyspaces["ks"]
    assert ks.klog_clusters and ks.vlog_clusters
    compact_and_wait(tb)
    assert not ks.klog_clusters
    assert not ks.vlog_clusters
    assert ks.pidx_clusters and ks.sorted_value_clusters


def test_variable_value_sizes(tb):
    pairs = [
        (f"vk-{i:06d}".encode(), bytes([i % 251]) * (1 + (i * 37) % 900))
        for i in range(800)
    ]
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)

    def proc():
        out = []
        for key, value in pairs[::97]:
            got = yield from tb.client.get("ks", key, tb.ctx)
            out.append(got == value)
        return out

    assert all(tb.run(proc()))


# ------------------------------------------------------------------ secondary index
def _pairs_with_energy(n):
    """Records whose value embeds a little-endian f64 'energy' at offset 8."""
    out = []
    for i in range(n):
        energy = (i * 7919 % n) / n * 10.0  # deterministic spread in [0, 10)
        value = bytes(8) + struct.pack("<d", energy) + bytes(16)
        out.append((f"p-{i:08d}".encode(), value))
    return out


def test_sidx_build_and_range_query(tb):
    pairs = _pairs_with_energy(2000)
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)

    def build():
        yield from tb.client.build_secondary_index(
            "ks", "energy", value_offset=8, width=8, dtype="f64", ctx=tb.ctx
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(build())
    lo = struct.pack("<d", 9.0)
    hi = struct.pack("<d", 10.1)

    def query():
        return (yield from tb.client.sidx_range_query("ks", "energy", lo, hi, tb.ctx))

    result = tb.run(query())
    expected = {
        k for k, v in pairs if struct.unpack("<d", v[8:16])[0] >= 9.0
    }
    assert {k for k, _ in result} == expected
    # full records returned
    by_key = dict(pairs)
    assert all(v == by_key[k] for k, v in result)


def test_sidx_selectivity_changes_result_size(tb):
    pairs = _pairs_with_energy(2000)
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)

    def build():
        yield from tb.client.build_secondary_index(
            "ks", "energy", value_offset=8, width=8, dtype="f64", ctx=tb.ctx
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(build())

    def query(threshold):
        lo = struct.pack("<d", threshold)
        hi = struct.pack("<d", 1e9)

        def proc():
            return (yield from tb.client.sidx_range_query("ks", "energy", lo, hi, tb.ctx))

        return tb.run(proc())

    selective = query(9.9)
    broad = query(5.0)
    assert len(selective) < len(broad)
    assert len(broad) == pytest.approx(1000, abs=50)


def test_sidx_requires_compacted(tb):
    setup_keyspace(tb, pairs=_pairs_with_energy(10))

    def proc():
        yield from tb.client.build_secondary_index(
            "ks", "energy", value_offset=8, width=8, dtype="f64", ctx=tb.ctx
        )

    with pytest.raises(KeyspaceStateError):
        tb.run(proc())


def test_sidx_duplicate_name_rejected(tb):
    setup_keyspace(tb, pairs=_pairs_with_energy(50))
    compact_and_wait(tb)

    def build():
        yield from tb.client.build_secondary_index(
            "ks", "energy", value_offset=8, width=8, dtype="f64", ctx=tb.ctx
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(build())
    with pytest.raises(SecondaryIndexError):
        tb.run(build())


def test_sidx_unknown_index_query_rejected(tb):
    setup_keyspace(tb, pairs=_pairs_with_energy(50))
    compact_and_wait(tb)

    def proc():
        yield from tb.client.sidx_range_query("ks", "nope", b"\x00" * 8, b"\xff" * 8, tb.ctx)

    with pytest.raises(SecondaryIndexError):
        tb.run(proc())


def test_sidx_point_query(tb):
    # Several records share the same u32 tag; the point query returns all.
    pairs = []
    for i in range(300):
        tag = struct.pack("<I", i % 10)
        pairs.append((f"t-{i:06d}".encode(), tag + bytes(12)))
    setup_keyspace(tb, pairs=pairs)
    compact_and_wait(tb)

    def build():
        yield from tb.client.build_secondary_index(
            "ks", "tag", value_offset=0, width=4, dtype="u32", ctx=tb.ctx
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(build())

    def query():
        return (
            yield from tb.client.sidx_point_query(
                "ks", "tag", struct.pack("<I", 3), tb.ctx
            )
        )

    result = tb.run(query())
    expected = {k for k, v in pairs if v[:4] == struct.pack("<I", 3)}
    assert {k for k, _ in result} == expected


# ------------------------------------------------------------------ multi-keyspace
def test_keys_reusable_across_keyspaces(tb):
    for name, val in (("ks-a", b"from-a"), ("ks-b", b"from-b")):
        def proc(name=name, val=val):
            yield from tb.client.create_keyspace(name, tb.ctx)
            yield from tb.client.open_keyspace(name, tb.ctx)
            yield from tb.client.bulk_put(name, [(b"shared-key", val)], tb.ctx)
            yield from tb.client.compact(name, tb.ctx)
            yield from tb.client.wait_for_device(name, tb.ctx)

        tb.run(proc())

    def check():
        a = yield from tb.client.get("ks-a", b"shared-key", tb.ctx)
        b = yield from tb.client.get("ks-b", b"shared-key", tb.ctx)
        return a, b

    assert tb.run(check()) == (b"from-a", b"from-b")


def test_concurrent_writers_to_shared_keyspace(tb):
    setup_keyspace(tb)
    per_thread = 500

    def writer(tid):
        pairs = [
            (f"w{tid}-{i:08d}".encode(), bytes([tid]) * 32)
            for i in range(per_thread)
        ]
        yield from tb.client.bulk_put("ks", pairs, tb.ctx.pinned(tid % 4))

    procs = [tb.env.process(writer(tid)) for tid in range(4)]
    tb.env.run()
    assert tb.device.keyspaces["ks"].n_pairs == 4 * per_thread
    compact_and_wait(tb)

    def check():
        v = yield from tb.client.get("ks", b"w2-00000033".ljust(12, b"0")[:12], tb.ctx)
        return v

    # key formatting: w2-00000033 is already 11 bytes; check a real key instead
    def check2():
        v = yield from tb.client.get("ks", f"w3-{7:08d}".encode(), tb.ctx)
        return v

    assert tb.run(check2()) == bytes([3]) * 32


def test_simulated_time_advances(tb):
    assert tb.env.now == 0.0
    setup_keyspace(tb, pairs=make_pairs(1000))
    assert tb.env.now > 0
    t_insert = tb.env.now
    compact_and_wait(tb)
    assert tb.env.now > t_insert
