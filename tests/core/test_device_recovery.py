"""Device power-cycle tests: the keyspace table survives in the metadata zone."""

import struct

import numpy as np
import pytest

from repro.core import KvCsdClient, KvCsdDevice, SidxConfig
from repro.core.keyspace import KeyspaceState
from repro.errors import DbError, KeyNotFoundError
from repro.nvme import PcieLink
from repro.soc import SocBoard

from tests.core.conftest import CsdTestbed, make_pairs


def power_cycle(tb):
    """Simulate a SoC power cycle: a fresh board + device over the same SSD.

    (The SSD keeps its zones — NAND is non-volatile; the SoC's DRAM state,
    including membufs and the in-memory keyspace table, is lost.)
    """
    board2 = SocBoard(tb.env, tb.ssd, spec=tb.board.spec)
    device2 = KvCsdDevice(
        board2,
        rng=np.random.default_rng(43),
        membuf_bytes=tb.device.membuf_bytes,
        cluster_zones=tb.device.cluster_zones,
    )
    client2 = KvCsdClient(device2, PcieLink(tb.env, lanes=16))

    def mount():
        yield from device2.recover(tb.ctx)

    tb.run(mount())
    return device2, client2


def test_recover_compacted_keyspace_and_query(tb=None):
    tb = CsdTestbed()
    pairs = make_pairs(3000)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    device2, client2 = power_cycle(tb)
    assert device2.keyspaces["ks"].state == KeyspaceState.COMPACTED
    assert device2.keyspaces["ks"].n_pairs == 3000
    assert device2.stats.counter("recoveries").value == 1

    def query():
        point = yield from client2.get("ks", pairs[1234][0], tb.ctx)
        rows = yield from client2.range_query(
            "ks", pairs[10][0], pairs[13][0], tb.ctx
        )
        return point, rows

    point, rows = tb.run(query())
    assert point == pairs[1234][1]
    assert [k for k, _ in rows] == sorted(k for k, _ in pairs[10:13])


def test_recover_secondary_index_sketch():
    tb = CsdTestbed()
    pairs = [
        (f"p{i:07d}".encode(), struct.pack("<I", i % 23) + bytes(8))
        for i in range(1000)
    ]

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact(
            "ks", tb.ctx,
            secondary_indexes=[SidxConfig("tag", value_offset=0, width=4, dtype="u32")],
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    _device2, client2 = power_cycle(tb)

    def query():
        rows = yield from client2.sidx_range_query(
            "ks", "tag", struct.pack("<I", 7), struct.pack("<I", 8), tb.ctx
        )
        return rows

    rows = tb.run(query())
    expected = {k for k, v in pairs if v[:4] == struct.pack("<I", 7)}
    assert {k for k, _ in rows} == expected


def test_recover_writable_keyspace_continues_ingest():
    tb = CsdTestbed()
    pairs = make_pairs(9000)  # > membuf, so KLOG/VLOG hold flushed data

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)

    tb.run(setup())
    flushed = tb.device.keyspaces["ks"].n_pairs  # includes membuf'd pairs
    device2, client2 = power_cycle(tb)
    ks = device2.keyspaces["ks"]
    assert ks.state == KeyspaceState.WRITABLE
    # membuf contents were lost; KLOG-resident pairs survive
    assert 0 < ks.n_pairs <= flushed

    more = make_pairs(500, key_bytes=24, prefix="late")

    def continue_ingest():
        yield from client2.bulk_put("ks", more, tb.ctx)
        yield from client2.compact("ks", tb.ctx)
        yield from client2.wait_for_device("ks", tb.ctx)
        v_new = yield from client2.get("ks", more[123][0], tb.ctx)
        v_old = yield from client2.get("ks", pairs[0][0], tb.ctx)
        return v_new, v_old

    v_new, v_old = tb.run(continue_ingest())
    assert v_new == more[123][1]
    assert v_old == pairs[0][1]


def test_recover_mid_compaction_reverts_to_writable():
    tb = CsdTestbed()
    pairs = make_pairs(20_000)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        # power fails while the device is COMPACTING

    tb.run(setup())
    assert tb.device.keyspaces["ks"].state == KeyspaceState.COMPACTING
    device2, client2 = power_cycle(tb)
    ks = device2.keyspaces["ks"]
    assert ks.state == KeyspaceState.WRITABLE
    assert device2.stats.counter("orphan_zones_reclaimed").value >= 0

    def redo():
        yield from client2.compact("ks", tb.ctx)
        yield from client2.wait_for_device("ks", tb.ctx)
        value = yield from client2.get("ks", pairs[777][0], tb.ctx)
        return value

    assert tb.run(redo()) == pairs[777][1]


def test_recover_respects_deletions():
    tb = CsdTestbed()

    def setup():
        for name in ("keep", "drop"):
            yield from tb.client.create_keyspace(name, tb.ctx)
            yield from tb.client.open_keyspace(name, tb.ctx)
            yield from tb.client.bulk_put(
                name, make_pairs(100, key_bytes=24, prefix=name), tb.ctx
            )
        yield from tb.client.delete_keyspace("drop", tb.ctx)

    tb.run(setup())
    device2, _client2 = power_cycle(tb)
    assert device2.list_keyspaces() == ["keep"]


def test_recover_reclaims_free_zones_consistently():
    tb = CsdTestbed()

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", make_pairs(5000), tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    free_before = tb.device.zone_manager.free_zone_count
    device2, _client2 = power_cycle(tb)
    assert device2.zone_manager.free_zone_count == free_before


def test_recover_requires_fresh_device():
    tb = CsdTestbed()

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)

    tb.run(setup())

    def bad():
        yield from tb.device.recover(tb.ctx)

    with pytest.raises(DbError):
        tb.run(bad())


def test_recover_empty_device():
    tb = CsdTestbed()
    device2, client2 = power_cycle(tb)
    assert device2.list_keyspaces() == []

    def create_after():
        yield from client2.create_keyspace("fresh", tb.ctx)
        yield from client2.open_keyspace("fresh", tb.ctx)

    tb.run(create_after())
    assert device2.keyspaces["fresh"].state == KeyspaceState.WRITABLE
