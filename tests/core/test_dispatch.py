"""Tests for the declarative NVMe-KV command dispatcher."""

import pytest

from repro.core.dispatch import KvCommandDispatcher
from repro.nvme.kv_commands import (
    BuildSidxCmd,
    CompactCmd,
    CreateKeyspaceCmd,
    DeleteKeyspaceCmd,
    KeyspaceStatCmd,
    KvBulkPutCmd,
    KvDeleteCmd,
    KvExistCmd,
    KvGetCmd,
    KvMultiGetCmd,
    KvPutCmd,
    ListKeyspacesCmd,
    MultiPointQueryCmd,
    OpenKeyspaceCmd,
    RangeQueryCmd,
    SidxRangeQueryCmd,
    WaitCompactionCmd,
)

from tests.core.conftest import CsdTestbed


@pytest.fixture
def dispatch_tb():
    tb = CsdTestbed()
    return tb, KvCommandDispatcher(tb.device)


def submit(tb, dispatcher, command):
    def proc():
        completion = yield from dispatcher.execute(command, tb.ctx)
        return completion

    return tb.run(proc())


def test_full_lifecycle_via_commands(dispatch_tb):
    tb, dispatcher = dispatch_tb
    assert submit(tb, dispatcher, CreateKeyspaceCmd(name="ks")).ok
    assert submit(tb, dispatcher, OpenKeyspaceCmd(name="ks")).ok
    pairs = [(f"k{i:04d}".encode(), bytes([i % 256]) * 16) for i in range(300)]
    put = KvBulkPutCmd(
        keyspace="ks",
        keys=tuple(k for k, _ in pairs),
        values=tuple(v for _, v in pairs),
    )
    assert submit(tb, dispatcher, put).ok
    assert submit(tb, dispatcher, CompactCmd(keyspace="ks")).ok
    assert submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks")).ok

    got = submit(tb, dispatcher, KvGetCmd(keyspace="ks", key=b"k0042"))
    assert got.ok and got.value == pairs[42][1]

    rng = submit(tb, dispatcher, RangeQueryCmd(keyspace="ks", lo=b"k0010", hi=b"k0013"))
    assert rng.ok and [k for k, _ in rng.value] == [b"k0010", b"k0011", b"k0012"]

    stat = submit(tb, dispatcher, KeyspaceStatCmd(name="ks"))
    assert stat.ok and stat.value["state"] == "compacted"

    listing = submit(tb, dispatcher, ListKeyspacesCmd())
    assert listing.value == ["ks"]

    assert submit(tb, dispatcher, DeleteKeyspaceCmd(name="ks")).ok
    assert submit(tb, dispatcher, ListKeyspacesCmd()).value == []


def test_single_put_and_exist(dispatch_tb):
    tb, dispatcher = dispatch_tb
    submit(tb, dispatcher, CreateKeyspaceCmd(name="ks"))
    submit(tb, dispatcher, OpenKeyspaceCmd(name="ks"))
    assert submit(tb, dispatcher, KvPutCmd(keyspace="ks", key=b"a", value=b"1")).ok
    submit(tb, dispatcher, CompactCmd(keyspace="ks"))
    submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks"))
    assert submit(tb, dispatcher, KvExistCmd(keyspace="ks", key=b"a")).value is True
    assert submit(tb, dispatcher, KvExistCmd(keyspace="ks", key=b"b")).value is False


def test_multi_get_commands(dispatch_tb):
    tb, dispatcher = dispatch_tb
    submit(tb, dispatcher, CreateKeyspaceCmd(name="ks"))
    submit(tb, dispatcher, OpenKeyspaceCmd(name="ks"))
    pairs = [(f"m{i:04d}".encode(), bytes([i % 256]) * 8) for i in range(200)]
    put = KvBulkPutCmd(
        keyspace="ks",
        keys=tuple(k for k, _ in pairs),
        values=tuple(v for _, v in pairs),
    )
    submit(tb, dispatcher, put)
    submit(tb, dispatcher, CompactCmd(keyspace="ks"))
    submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks"))

    wanted = (b"m0003", b"m0150", b"absent!")
    expected = {b"m0003": pairs[3][1], b"m0150": pairs[150][1]}
    got = submit(tb, dispatcher, KvMultiGetCmd(keyspace="ks", keys=wanted))
    assert got.ok and got.value == expected
    # the vendor-extension spelling routes to the same batched device op
    got = submit(tb, dispatcher, MultiPointQueryCmd(keyspace="ks", keys=wanted))
    assert got.ok and got.value == expected


def test_delete_command_masks_key(dispatch_tb):
    tb, dispatcher = dispatch_tb
    submit(tb, dispatcher, CreateKeyspaceCmd(name="ks"))
    submit(tb, dispatcher, OpenKeyspaceCmd(name="ks"))
    submit(tb, dispatcher, KvPutCmd(keyspace="ks", key=b"doomed", value=b"x"))
    submit(tb, dispatcher, KvDeleteCmd(keyspace="ks", key=b"doomed"))
    submit(tb, dispatcher, CompactCmd(keyspace="ks"))
    submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks"))
    assert submit(tb, dispatcher, KvExistCmd(keyspace="ks", key=b"doomed")).value is False


def test_sidx_commands(dispatch_tb):
    import struct

    tb, dispatcher = dispatch_tb
    submit(tb, dispatcher, CreateKeyspaceCmd(name="ks"))
    submit(tb, dispatcher, OpenKeyspaceCmd(name="ks"))
    keys, values = [], []
    for i in range(200):
        keys.append(f"p{i:06d}".encode())
        values.append(struct.pack("<I", i % 13) + bytes(8))
    submit(
        tb,
        dispatcher,
        KvBulkPutCmd(keyspace="ks", keys=tuple(keys), values=tuple(values)),
    )
    submit(tb, dispatcher, CompactCmd(keyspace="ks"))
    submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks"))
    assert submit(
        tb,
        dispatcher,
        BuildSidxCmd(keyspace="ks", index_name="tag", value_offset=0, width=4, dtype="u32"),
    ).ok
    submit(tb, dispatcher, WaitCompactionCmd(keyspace="ks"))
    result = submit(
        tb,
        dispatcher,
        SidxRangeQueryCmd(
            keyspace="ks",
            index_name="tag",
            lo=struct.pack("<I", 5),
            hi=struct.pack("<I", 6),
        ),
    )
    expected = {k for k, v in zip(keys, values) if v[:4] == struct.pack("<I", 5)}
    assert {k for k, _ in result.value} == expected


def test_errors_become_error_completions(dispatch_tb):
    tb, dispatcher = dispatch_tb
    c = submit(tb, dispatcher, OpenKeyspaceCmd(name="ghost"))
    assert not c.ok
    assert c.status == "KeyspaceNotFoundError"

    submit(tb, dispatcher, CreateKeyspaceCmd(name="ks"))
    c = submit(tb, dispatcher, KvGetCmd(keyspace="ks", key=b"x"))
    assert not c.ok
    assert c.status == "KeyspaceStateError"


def test_unsupported_command_rejected(dispatch_tb):
    from repro.nvme.kv_commands import KvCommand

    tb, dispatcher = dispatch_tb
    c = submit(tb, dispatcher, KvCommand())
    assert not c.ok
    assert c.status == "ReproError"
