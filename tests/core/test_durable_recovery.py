"""Durable-metadata mount pipeline: staged recovery, bloom reload, A/B
checkpoints, torn-tail tolerance."""

import numpy as np

from repro.core import KvCsdClient, KvCsdDevice
from repro.core.device import (
    METADATA_STANDBY_ZONE_ID,
    METADATA_ZONE_ID,
    MOUNT_STAGES,
)
from repro.core.keyspace import KeyspaceState
from repro.errors import KeyNotFoundError
from repro.nvme import PcieLink
from repro.obs.journal import install_journal
from repro.soc import SocBoard
from repro.ssd.zone import ZoneState

from tests.core.conftest import CsdTestbed, make_pairs


def durable_tb(**kwargs):
    kwargs.setdefault("bloom_bits_per_key", 10)
    return CsdTestbed(durable_meta=True, **kwargs)


def power_cycle(tb):
    """A fresh board + device over the same SSD (DRAM state is lost)."""
    board2 = SocBoard(tb.env, tb.ssd, spec=tb.board.spec)
    device2 = KvCsdDevice(
        board2,
        rng=np.random.default_rng(43),
        membuf_bytes=tb.device.membuf_bytes,
        cluster_zones=tb.device.cluster_zones,
    )
    client2 = KvCsdClient(device2, PcieLink(tb.env, lanes=16))

    def mount():
        yield from device2.recover(tb.ctx)

    tb.run(mount())
    return device2, client2


def load_and_compact(tb, pairs, name="ks"):
    def setup():
        yield from tb.client.create_keyspace(name, tb.ctx)
        yield from tb.client.open_keyspace(name, tb.ctx)
        yield from tb.client.bulk_put(name, pairs, tb.ctx)
        yield from tb.client.compact(name, tb.ctx)
        yield from tb.client.wait_for_device(name, tb.ctx)

    tb.run(setup())


def test_blooms_survive_power_cycle():
    """A recovered durable device keeps its persisted PIDX blooms — reads of
    absent keys stay eliminated without any reconstruction I/O."""
    tb = durable_tb()
    pairs = make_pairs(3000)
    load_and_compact(tb, pairs)
    sketch = tb.device.keyspaces["ks"].pidx_sketch
    assert len(sketch.blooms) == len(sketch) > 0

    device2, client2 = power_cycle(tb)
    recovered = device2.keyspaces["ks"].pidx_sketch
    assert len(recovered.blooms) == len(recovered) == len(sketch)
    assert device2.stats.counter("blooms_reloaded").value == len(sketch)
    assert device2.stats.counter("blooms_reconstructed").value == 0

    absent = [f"zz-{i:012d}".encode().ljust(16, b"0") for i in range(20)]
    before = device2.stats.counter("pidx_block_reads").value

    def probe():
        hit = yield from client2.get("ks", pairs[42][0], tb.ctx)
        misses = 0
        for key in absent:
            try:
                yield from client2.get("ks", key, tb.ctx)
            except KeyNotFoundError:
                misses += 1
        return hit, misses

    hit, misses = tb.run(probe())
    assert hit == pairs[42][1]
    assert misses == len(absent)
    # reloaded blooms eliminate (nearly) every absent-key block read
    eliminated_misses = before + 1  # +1 block read for the present key
    assert device2.stats.counter("pidx_block_reads").value <= eliminated_misses + 2


def test_mount_stages_journaled_and_gauged():
    tb = durable_tb()
    journal = install_journal(tb.env)
    load_and_compact(tb, make_pairs(1500))
    device2, _client2 = power_cycle(tb)

    assert set(device2._mount_stages) == set(MOUNT_STAGES)
    begins = [e for e in journal.events if e.type == "mount.stage_begin"]
    ends = [e for e in journal.events if e.type == "mount.stage_end"]
    assert [e.fields["stage"] for e in begins] == list(MOUNT_STAGES)
    assert [e.fields["stage"] for e in ends] == list(MOUNT_STAGES)

    gauges = device2.metric_gauges()
    assert gauges["recovery.count"]() == 1.0
    assert gauges["recovery.mount_seconds"]() == sum(
        device2._mount_stages.values()
    )
    for stage in MOUNT_STAGES:
        assert gauges[f"recovery.stage_seconds.{stage}"]() >= 0.0


def test_ab_checkpoint_swaps_zones_and_survives_torn_target():
    tb = durable_tb()
    load_and_compact(tb, make_pairs(1000))

    def checkpoint():
        yield from tb.device._checkpoint_metadata(tb.ctx)

    tb.run(checkpoint())
    assert tb.device._meta_epoch == 1
    # the snapshot went to the standby zone; roles swapped
    assert tb.device._metadata_cluster.zone_ids == [METADATA_STANDBY_ZONE_ID]
    assert tb.ssd.zone(METADATA_ZONE_ID).write_pointer == 0

    # a crash mid-way through the *next* checkpoint: EPOCH(2) lands in the
    # new standby zone but COMMIT never does
    torn = tb.device.meta_codec.encode_epoch(2)

    def tear():
        yield from tb.ssd.append(METADATA_ZONE_ID, torn)

    tb.run(tear())
    device2, client2 = power_cycle(tb)
    # mount fell back to the sealed epoch-1 stream, data intact
    assert device2._meta_epoch == 1
    assert device2.keyspaces["ks"].n_pairs == 1000

    def query():
        return (yield from client2.get("ks", make_pairs(1000)[5][0], tb.ctx))

    assert tb.run(query()) == make_pairs(1000)[5][1]


def test_torn_metadata_append_applies_intact_prefix():
    tb = durable_tb()
    pairs = make_pairs(1200)
    load_and_compact(tb, pairs)
    ks = tb.device.keyspaces["ks"]
    record = tb.device.meta_codec.encode_upsert(ks, 9999)

    def tear():
        zone_id = tb.device._metadata_cluster.zone_ids[0]
        yield from tb.ssd.append(zone_id, record[: len(record) // 2])

    tb.run(tear())
    device2, client2 = power_cycle(tb)
    assert device2.stats.counter("metadata_torn_tails").value == 1
    assert device2.keyspaces["ks"].state == KeyspaceState.COMPACTED
    assert device2.keyspaces["ks"].n_pairs == 1200

    def query():
        return (yield from client2.get("ks", pairs[7][0], tb.ctx))

    assert tb.run(query()) == pairs[7][1]


def test_delete_surviving_zone_full_checkpoint_is_not_resurrected():
    """A delete whose record append overflows the metadata zone falls back
    to a checkpoint taken while the dying keyspace is still in the table
    (durable ordering persists the delete *before* releasing data zones).
    The delete record must be re-appended after that checkpoint — otherwise
    a later mount replays the snapshot and resurrects the keyspace pointing
    at freed, reusable zones."""
    from repro.units import KiB

    tb = durable_tb(zone_size=256 * KiB)
    load_and_compact(tb, make_pairs(1000), name="victim")
    dev = tb.device
    delete_len = len(dev.meta_codec.encode_delete("victim"))
    meta_zone = tb.ssd.zone(dev._metadata_cluster.zone_ids[0])

    def pad(size):
        # a valid v2 delete record of a nonexistent name: harmless filler
        # (frame = 11 bytes, payload = type byte + u16 length + name)
        return dev.meta_codec.encode_delete("x" * (size - 14))

    def fill():
        # leave less free space than one "victim" delete record, so the
        # delete's append raises ZoneFullError and checkpoints instead
        while True:
            room = meta_zone.capacity - meta_zone.write_pointer
            if room < delete_len:
                break
            size = max(14, min(room - 14, 0xFF00))
            yield from tb.ssd.append(meta_zone.zone_id, pad(size))

    tb.run(fill())

    def drop():
        yield from tb.client.delete_keyspace("victim", tb.ctx)

    tb.run(drop())
    assert dev.stats.counter("metadata_checkpoints").value == 1
    assert "victim" not in dev.keyspaces

    device2, _client2 = power_cycle(tb)
    assert device2._meta_epoch == 1
    assert device2.list_keyspaces() == []


def test_metadata_writers_serialized_by_meta_lock():
    """The durable A/B checkpoint yields many times between snapshot and
    swap; a concurrent metadata append landing on the pre-swap cluster
    would be erased by the post-swap reset.  All durable-mode metadata
    writers therefore queue on the device metadata lock."""
    tb = durable_tb()
    load_and_compact(tb, make_pairs(500))
    dev = tb.device
    zone = tb.ssd.zone(dev._metadata_cluster.zone_ids[0])

    hold = dev._meta_lock.request()  # granted synchronously: lock is ours

    def update():
        yield from dev._metadata_update(tb.ctx, dev.keyspaces["ks"])

    proc = tb.env.process(update())
    tb.env.run(until=tb.env.now + 1e-3)
    assert proc.is_alive  # blocked behind the held metadata lock
    wp_before = zone.write_pointer

    dev._meta_lock.release(hold)
    tb.env.run(until=proc)
    assert zone.write_pointer > wp_before  # the queued upsert landed


def test_torn_klog_tail_sealed_on_mount():
    tb = durable_tb()
    pairs = make_pairs(9000)  # > membuf, so KLOG zones hold flushed data

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)

    tb.run(setup())
    ks = tb.device.keyspaces["ks"]
    target = next(
        z for z in ks.klog_clusters[0].zone_ids
        if tb.ssd.zone(z).write_pointer
        and tb.ssd.zone(z).state is ZoneState.OPEN
    )

    def tear():
        # half a KLOG record: a 16-byte key length prefix with no body
        yield from tb.ssd.append(target, b"\x10\x00" + b"xx")

    tb.run(tear())
    device2, client2 = power_cycle(tb)
    assert device2.stats.counter("klog_torn_tails").value >= 1
    # the torn zone was sealed so later appends cannot corrupt rescans
    assert tb.ssd.zone(target).state is ZoneState.FULL
    recovered = device2.keyspaces["ks"]
    assert recovered.state == KeyspaceState.WRITABLE
    assert recovered.n_pairs > 0

    more = make_pairs(500, key_bytes=24, prefix="late")

    def continue_ingest():
        yield from client2.bulk_put("ks", more, tb.ctx)
        yield from client2.compact("ks", tb.ctx)
        yield from client2.wait_for_device("ks", tb.ctx)
        v_new = yield from client2.get("ks", more[123][0], tb.ctx)
        v_old = yield from client2.get("ks", pairs[0][0], tb.ctx)
        return v_new, v_old

    v_new, v_old = tb.run(continue_ingest())
    assert v_new == more[123][1]
    assert v_old == pairs[0][1]


def test_durable_delete_then_power_cycle_reclaims_orphans():
    tb = durable_tb()
    install_journal(tb.env)

    def setup():
        for name in ("keep", "drop"):
            yield from tb.client.create_keyspace(name, tb.ctx)
            yield from tb.client.open_keyspace(name, tb.ctx)
            yield from tb.client.bulk_put(
                name, make_pairs(3000, key_bytes=24, prefix=name), tb.ctx
            )
        yield from tb.client.delete_keyspace("drop", tb.ctx)

    tb.run(setup())
    device2, _client2 = power_cycle(tb)
    assert device2.list_keyspaces() == ["keep"]
    assert device2.zone_manager.free_zone_count == (
        tb.device.zone_manager.free_zone_count
    )
