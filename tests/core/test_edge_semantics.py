"""Edge-case semantics across both stores: empty ranges, empty keyspaces,
zero-byte values, reversed bounds."""

import pytest

from repro.errors import KeyNotFoundError

from tests.core.conftest import CsdTestbed, make_pairs
from tests.lsm.conftest import LsmTestbed, small_options


# ------------------------------------------------------------------ KV-CSD
def test_compact_empty_keyspace():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        rows = yield from tb.client.range_query("ks", b"", b"\xff" * 8, tb.ctx)
        return rows

    assert tb.run(proc()) == []
    assert tb.device.keyspaces["ks"].n_pairs == 0

    def get_missing():
        yield from tb.client.get("ks", b"anything", tb.ctx)

    with pytest.raises(KeyNotFoundError):
        tb.run(get_missing())


def test_reversed_and_empty_range_bounds():
    tb = CsdTestbed()
    pairs = make_pairs(200)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        reversed_bounds = yield from tb.client.range_query(
            "ks", pairs[100][0], pairs[50][0], tb.ctx
        )
        empty = yield from tb.client.range_query(
            "ks", pairs[50][0], pairs[50][0], tb.ctx
        )
        return reversed_bounds, empty

    reversed_bounds, empty = tb.run(proc())
    assert reversed_bounds == []
    assert empty == []


def test_zero_byte_values_roundtrip():
    tb = CsdTestbed()
    pairs = [(f"z{i:04d}".encode(), b"") for i in range(100)]

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        value = yield from tb.client.get("ks", b"z0042", tb.ctx)
        rows = yield from tb.client.range_query("ks", b"z0000", b"z9999", tb.ctx)
        return value, rows

    value, rows = tb.run(proc())
    assert value == b""
    assert len(rows) == 100
    assert all(v == b"" for _k, v in rows)


def test_single_pair_keyspace():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.put("ks", b"only", b"one", tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        value = yield from tb.client.get("ks", b"only", tb.ctx)
        return value

    assert tb.run(proc()) == b"one"


def test_delete_everything_then_compact():
    tb = CsdTestbed()
    pairs = make_pairs(50)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.bulk_delete("ks", [k for k, _ in pairs], tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        rows = yield from tb.client.range_query("ks", b"", b"\xff" * 20, tb.ctx)
        return rows

    assert tb.run(proc()) == []
    assert tb.device.keyspaces["ks"].n_pairs == 0


# ------------------------------------------------------------------ LSM
def test_lsm_empty_scan_and_reversed_bounds():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))

    def proc():
        empty = yield from tb.db.scan(b"a", b"z", tb.fg)
        yield from tb.db.put(b"m", b"v", tb.fg)
        reversed_bounds = yield from tb.db.scan(b"z", b"a", tb.fg)
        return empty, reversed_bounds

    empty, reversed_bounds = tb.run(proc())
    assert empty == []
    assert reversed_bounds == []


def test_lsm_zero_byte_value():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))

    def proc():
        yield from tb.db.put(b"k", b"", tb.fg)
        yield from tb.db.flush(tb.fg)
        value = yield from tb.db.get(b"k", tb.fg)
        return value

    assert tb.run(proc()) == b""


def test_lsm_empty_write_batch_is_noop():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))

    def proc():
        yield from tb.db.write_batch([], tb.fg)

    tb.run(proc())
    assert tb.db.stats.counter("puts").value == 0
