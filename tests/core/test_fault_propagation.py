"""Media-error containment through the full KV path.

An injected fault during a flush, compaction, or index build must surface
as an error on exactly the affected request, leave the keyspace in a legal
state (the invariant auditor passes), and leave the queue pair healthy so
a retry succeeds.
"""

import pytest

from repro.core import SidxConfig
from repro.core.keyspace import KeyspaceState
from repro.errors import StorageError
from repro.nvme.kv_commands import KvGetCmd, WaitCompactionCmd
from repro.obs.audit import InvariantAuditor
from repro.ssd.faults import FaultPlan, MediaError

from tests.core.conftest import CsdTestbed, make_pairs


def assert_device_legal(tb):
    report = InvariantAuditor(tb.device, level="phase").run("fault-containment")
    assert report.ok, report.violations


def open_keyspace(tb, name="ks"):
    def setup():
        yield from tb.client.create_keyspace(name, tb.ctx)
        yield from tb.client.open_keyspace(name, tb.ctx)

    tb.run(setup())


def test_media_error_during_flush_contained():
    """A write fault while flushing the membuf fails that put; the device
    keeps serving and a retry lands the data."""
    tb = CsdTestbed()
    open_keyspace(tb)
    pairs = make_pairs(9000)  # > membuf, forces KLOG/VLOG flushes
    tb.ssd.faults = FaultPlan(fail_writes=1)

    def put():
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)

    with pytest.raises(StorageError):
        tb.run(put())
    assert tb.ssd.faults.exhausted
    assert_device_legal(tb)
    assert tb.device.keyspaces["ks"].state == KeyspaceState.WRITABLE

    tb.ssd.faults = None

    def retry():
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        return (yield from tb.client.get("ks", pairs[77][0], tb.ctx))

    assert tb.run(retry()) == pairs[77][1]


@pytest.mark.parametrize("durable_meta", [False, True])
def test_media_error_during_compaction_unwinds(durable_meta):
    """A fault mid-compaction parks on the wait ticket only: the keyspace
    reverts to WRITABLE with its logs intact and recompacts cleanly."""
    tb = CsdTestbed(durable_meta=durable_meta, bloom_bits_per_key=10)
    open_keyspace(tb)
    pairs = make_pairs(5000)

    def load():
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)  # drain the membuf

    tb.run(load())
    # skip the compact command's own metadata append; the fault then lands
    # on the job's first write (a sorted-value extent)
    tb.ssd.faults = FaultPlan(fail_writes=1, after_writes=1)

    def compact():
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    with pytest.raises(MediaError):
        tb.run(compact())
    assert tb.device.stats.counter("compaction_failures").value == 1
    ks = tb.device.keyspaces["ks"]
    assert ks.state == KeyspaceState.WRITABLE
    assert ks.klog_clusters  # inputs survived the unwind
    assert_device_legal(tb)

    tb.ssd.faults = None

    def retry():
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        return (yield from tb.client.get("ks", pairs[1234][0], tb.ctx))

    assert tb.run(retry()) == pairs[1234][1]
    assert tb.device.keyspaces["ks"].n_pairs == len(pairs)


def test_media_error_during_sidx_build_spares_primary():
    """An index-build fault loses only the secondary index: the compacted
    primary path keeps serving queries and the build can be retried."""
    tb = CsdTestbed()
    open_keyspace(tb)
    pairs = [
        (f"p{i:07d}".encode(), (i % 23).to_bytes(4, "little") + bytes(8))
        for i in range(3000)
    ]

    def load():
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(load())
    tb.ssd.faults = FaultPlan(fail_writes=1)
    config = SidxConfig("tag", value_offset=0, width=4, dtype="u32")

    def build():
        yield from tb.client.build_secondary_index(
            "ks", config.name, config.value_offset, config.width,
            config.dtype, tb.ctx,
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)

    with pytest.raises(MediaError):
        tb.run(build())
    ks = tb.device.keyspaces["ks"]
    assert ks.state == KeyspaceState.COMPACTED
    assert "tag" not in ks.sidx  # the partial index was unwound
    assert_device_legal(tb)

    tb.ssd.faults = None

    def query_then_retry():
        value = yield from tb.client.get("ks", pairs[42][0], tb.ctx)
        yield from tb.client.build_secondary_index(
            "ks", config.name, config.value_offset, config.width,
            config.dtype, tb.ctx,
        )
        yield from tb.client.wait_for_device("ks", tb.ctx)
        rows = yield from tb.client.sidx_range_query(
            "ks", "tag", (7).to_bytes(4, "little"), (8).to_bytes(4, "little"),
            tb.ctx,
        )
        return value, rows

    value, rows = tb.run(query_then_retry())
    assert value == pairs[42][1]
    expected = {k for k, v in pairs if v[:4] == (7).to_bytes(4, "little")}
    assert {k for k, _ in rows} == expected


def test_error_completion_touches_only_affected_ticket():
    """Batch reaping: the failing wait ticket completes with an error
    status; every other in-flight command on the same queue pair is OK."""
    tb = CsdTestbed()
    open_keyspace(tb)
    open_keyspace(tb, "other")
    pairs = make_pairs(5000)
    opairs = make_pairs(300, key_bytes=24, prefix="o")

    def load():
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)
        yield from tb.client.bulk_put("other", opairs, tb.ctx)
        yield from tb.client.compact("other", tb.ctx)
        yield from tb.client.wait_for_device("other", tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)

    tb.run(load())
    tb.ssd.faults = FaultPlan(fail_writes=1)

    def batch():
        return (
            yield from tb.client.submit_many(
                [
                    WaitCompactionCmd(keyspace="ks"),
                    KvGetCmd(keyspace="other", key=opairs[0][0]),
                ],
                tb.ctx,
            )
        )

    wait_cpl, get_cpl = tb.run(batch())
    assert not wait_cpl.ok
    assert wait_cpl.status == "MediaError"
    # the queue pair survived: the sibling ticket completed normally
    assert get_cpl.ok
    assert get_cpl.value == opairs[0][1]
    assert_device_legal(tb)


def test_fault_does_not_poison_other_keyspaces():
    """An error on one keyspace's compaction leaves every other keyspace's
    traffic untouched."""
    tb = CsdTestbed()
    for name in ("victim", "bystander"):
        open_keyspace(tb, name)

    def load():
        yield from tb.client.bulk_put(
            "victim", make_pairs(5000, key_bytes=24, prefix="v"), tb.ctx
        )
        yield from tb.client.bulk_put(
            "bystander", make_pairs(200, key_bytes=24, prefix="b"), tb.ctx
        )
        yield from tb.client.fsync("victim", tb.ctx)

    tb.run(load())
    tb.ssd.faults = FaultPlan(fail_writes=1, after_writes=1)

    def compact_victim():
        yield from tb.client.compact("victim", tb.ctx)
        yield from tb.client.wait_for_device("victim", tb.ctx)

    with pytest.raises(MediaError):
        tb.run(compact_victim())
    tb.ssd.faults = None

    bpairs = make_pairs(200, key_bytes=24, prefix="b")

    def bystander_traffic():
        yield from tb.client.compact("bystander", tb.ctx)
        yield from tb.client.wait_for_device("bystander", tb.ctx)
        return (yield from tb.client.get("bystander", bpairs[5][0], tb.ctx))

    assert tb.run(bystander_traffic()) == bpairs[5][1]
    assert_device_legal(tb)
