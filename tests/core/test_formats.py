"""Unit tests for KV-CSD wire, KLOG, PIDX and SIDX formats."""

import struct

import numpy as np
import pytest

from repro.core.klog import (
    klog_record_size,
    pack_klog_records,
    unpack_klog_records,
    unpack_klog_records_prefix,
)
from repro.core.membuf import MemBuffer
from repro.core.pidx import (
    PidxSketch,
    build_pidx_blocks,
    pack_value_pointer,
    read_block_entries,
    unpack_value_pointer,
)
from repro.core.sidx import (
    SidxConfig,
    SidxSketch,
    build_sidx_blocks,
    decode_skey,
    encode_skey,
    encode_skeys_array,
    pack_sidx_pairs,
    read_sidx_block,
    unpack_sidx_pairs,
)
from repro.core.wire import (
    BULK_MESSAGE_BYTES,
    pack_pairs,
    pair_wire_size,
    split_into_messages,
    unpack_pairs,
)
from repro.errors import DbError, KlogTruncatedError, SecondaryIndexError


# ------------------------------------------------------------------ wire
def test_wire_roundtrip():
    pairs = [(f"k{i}".encode(), bytes([i]) * i) for i in range(1, 50)]
    assert unpack_pairs(pack_pairs(pairs)) == pairs


def test_wire_empty_message():
    assert unpack_pairs(pack_pairs([])) == []


def test_wire_message_capacity_matches_paper():
    # 16B keys + 32B values: the paper fits ~2570 pairs into 128KB.
    per_pair = pair_wire_size(b"k" * 16, b"v" * 32)
    capacity = BULK_MESSAGE_BYTES // per_pair
    assert 2200 <= capacity <= 2600


def test_wire_split_respects_budget():
    pairs = [(f"key-{i:06d}".encode(), b"v" * 32) for i in range(10_000)]
    messages = split_into_messages(pairs, 128 * 1024)
    assert sum(len(m) for m in messages) == len(pairs)
    for message in messages:
        wire = 4 + sum(pair_wire_size(k, v) for k, v in message)
        assert wire <= 128 * 1024
    # order preserved
    flat = [p for m in messages for p in m]
    assert flat == pairs


def test_wire_oversized_single_pair_gets_own_message():
    pairs = [(b"k", b"x" * (256 * 1024)), (b"k2", b"y")]
    messages = split_into_messages(pairs, 128 * 1024)
    assert len(messages) == 2
    assert messages[0][0][0] == b"k"


def test_wire_truncated_rejected():
    with pytest.raises(DbError):
        unpack_pairs(b"\x01")


# ------------------------------------------------------------------ klog
def test_klog_roundtrip():
    records = [
        (b"alpha", 1, (3, 4096, 32)),
        (b"beta", 2, None),  # tombstone
        (b"x" * 100, 3, (0, 0, 1)),
    ]
    blob = pack_klog_records(records)
    assert len(blob) == sum(klog_record_size(k) for k, _, _ in records)
    assert unpack_klog_records(blob) == records


def test_klog_truncated_rejected():
    blob = pack_klog_records([(b"k", 1, (0, 0, 4))])
    with pytest.raises(KlogTruncatedError):
        unpack_klog_records(blob[:-3])
    assert issubclass(KlogTruncatedError, DbError)


def test_klog_prefix_parse_tolerates_tail_truncation_only():
    """The mount-rescan parser returns the longest intact prefix of a torn
    extent; the tolerance is scoped to tail truncation
    (:class:`KlogTruncatedError`), never other parse failures."""
    records = [(f"k{i:03d}".encode(), i, (1, i * 64, 64)) for i in range(10)]
    blob = pack_klog_records(records)
    assert unpack_klog_records_prefix(blob) == (records, 0)

    torn = blob[:-5]  # power cut mid-way through the final record
    parsed, suffix = unpack_klog_records_prefix(torn)
    assert parsed == records[:-1]
    assert suffix == len(torn) - sum(
        klog_record_size(k) for k, _, _ in records[:-1]
    )


def test_klog_tombstone_sentinel_collision_rejected():
    with pytest.raises(DbError):
        pack_klog_records([(b"k", 1, (0, 0, 0xFFFFFFFF))])


# ------------------------------------------------------------------ membuf
def test_membuf_accumulates_and_flush_threshold():
    mb = MemBuffer(capacity=1024)
    assert not mb.should_flush
    for i in range(20):
        mb.add(f"key-{i}".encode(), b"v" * 50)
    assert mb.should_flush
    pairs = mb.drain()
    assert len(pairs) == 20
    assert mb.bytes_buffered == 0
    assert not mb.should_flush


def test_membuf_get_newest_wins():
    mb = MemBuffer(capacity=4096)
    mb.add(b"k", b"old")
    mb.add(b"k", b"new")
    assert mb.get(b"k") == b"new"
    assert mb.get(b"nope") is None


def test_membuf_too_small_rejected():
    with pytest.raises(DbError):
        MemBuffer(capacity=10)


# ------------------------------------------------------------------ pidx
def test_value_pointer_roundtrip():
    assert unpack_value_pointer(pack_value_pointer((7, 12345, 64))) == (7, 12345, 64)


def test_pidx_blocks_and_read():
    entries = [
        (f"key-{i:05d}".encode(), (i % 4, i * 100, 32)) for i in range(2000)
    ]
    blocks = build_pidx_blocks(entries, block_bytes=4096)
    assert len(blocks) > 1
    recovered = []
    for _pivot, blob in blocks:
        recovered.extend(read_block_entries(blob))
    assert recovered == entries
    # pivots are each block's first key
    assert blocks[0][0] == b"key-00000"


def test_pidx_sketch_point_lookup():
    sketch = PidxSketch()
    sketch.add_block(b"a", (0, 0, 4096))
    sketch.add_block(b"m", (1, 0, 4096))
    sketch.add_block(b"t", (2, 0, 4096))
    assert sketch.find_block(b"a") == 0
    assert sketch.find_block(b"lzz") == 0
    assert sketch.find_block(b"m") == 1
    assert sketch.find_block(b"zz") == 2
    assert sketch.find_block(b"0") is None  # before first pivot


def test_pidx_sketch_range():
    sketch = PidxSketch()
    for pivot in (b"a", b"h", b"p", b"x"):
        sketch.add_block(pivot, (0, 0, 4096))
    assert list(sketch.blocks_for_range(b"b", b"q")) == [0, 1, 2]
    assert list(sketch.blocks_for_range(b"h", b"i")) == [1]
    assert list(sketch.blocks_for_range(b"y", b"z")) == [3]
    assert list(sketch.blocks_for_range(b"b", b"b")) == []
    # hi exclusive: a block whose pivot equals hi is excluded
    assert list(sketch.blocks_for_range(b"b", b"p")) == [0, 1]


def test_pidx_sketch_rejects_unsorted_pivots():
    sketch = PidxSketch()
    sketch.add_block(b"m", (0, 0, 1))
    with pytest.raises(DbError):
        sketch.add_block(b"a", (1, 0, 1))


# ------------------------------------------------------------------ sidx encodings
@pytest.mark.parametrize("dtype,fmt,samples", [
    ("u32", "<I", [0, 1, 77, 2**31, 2**32 - 1]),
    ("u64", "<Q", [0, 1, 2**63, 2**64 - 1]),
    ("i32", "<i", [-(2**31), -1, 0, 1, 2**31 - 1]),
    ("i64", "<q", [-(2**63), -12345, 0, 99, 2**63 - 1]),
    ("f32", "<f", [-1e30, -1.5, -0.0, 0.0, 1e-20, 3.14, 1e30]),
    ("f64", "<d", [-1e300, -2.5, 0.0, 1e-200, 42.0, 1e308]),
])
def test_encode_skey_order_preserving(dtype, fmt, samples):
    raws = [struct.pack(fmt, v) for v in sorted(samples, key=float)]
    encoded = [encode_skey(r, dtype) for r in raws]
    assert encoded == sorted(encoded), f"{dtype} encoding broke ordering"
    # decode inverts encode
    for raw in raws:
        assert decode_skey(encode_skey(raw, dtype), dtype) == raw


def test_encode_skey_bytes_passthrough():
    assert encode_skey(b"abc", "bytes") == b"abc"
    assert decode_skey(b"abc", "bytes") == b"abc"


def test_encode_skeys_array_matches_scalar():
    rng = np.random.default_rng(0)
    for dtype, np_dtype in [("u32", "<u4"), ("i64", "<i8"), ("f64", "<f8"), ("f32", "<f4")]:
        if dtype.startswith("f"):
            values = rng.standard_normal(100).astype(np_dtype) * 1e10
        else:
            info = np.iinfo(np_dtype)
            values = rng.integers(info.min, info.max, size=100).astype(np_dtype)
        raw = values.view(np.uint8).reshape(100, values.itemsize)
        vectorized = encode_skeys_array(raw, dtype)
        for i in range(100):
            scalar = encode_skey(raw[i].tobytes(), dtype)
            assert vectorized[i].tobytes() == scalar


def test_sidx_config_validation():
    with pytest.raises(SecondaryIndexError):
        SidxConfig(name="", value_offset=0, width=4)
    with pytest.raises(SecondaryIndexError):
        SidxConfig(name="e", value_offset=-1, width=4)
    with pytest.raises(SecondaryIndexError):
        SidxConfig(name="e", value_offset=0, width=3, dtype="f32")
    with pytest.raises(SecondaryIndexError):
        SidxConfig(name="e", value_offset=0, width=4, dtype="complex")
    cfg = SidxConfig(name="energy", value_offset=24, width=8, dtype="f64")
    value = bytes(range(32))
    assert cfg.extract(value) == value[24:32]
    with pytest.raises(SecondaryIndexError):
        cfg.extract(b"short")


def test_sidx_pairs_pack_roundtrip():
    pairs = [(b"e1", b"pkey-1"), (b"e2", b"pk2"), (b"", b"x")]
    assert unpack_sidx_pairs(pack_sidx_pairs(pairs)) == pairs


def test_sidx_blocks_roundtrip():
    pairs = sorted(
        (struct.pack(">I", i % 50), f"pk-{i:04d}".encode()) for i in range(500)
    )
    blocks = build_sidx_blocks(pairs, block_bytes=1024)
    recovered = []
    for _pivot, blob in blocks:
        recovered.extend(read_sidx_block(blob, skey_width=4))
    assert recovered == pairs


def test_sidx_sketch_range():
    sketch = SidxSketch(skey_width=4)
    for i in (10, 20, 30):
        sketch.add_block(struct.pack(">I", i) + b"pk", (0, 0, 1))
    lo = struct.pack(">I", 15)
    hi = struct.pack(">I", 25)
    assert list(sketch.blocks_for_range(lo, hi)) == [0, 1]
    assert list(sketch.blocks_for_range(struct.pack(">I", 31), struct.pack(">I", 99))) == [2]
    assert list(sketch.blocks_for_range(hi, lo)) == []


# ------------------------------------------------- pidx bulk-packing fast path
def _reference_pidx_blocks(entries, block_bytes):
    """The per-entry BlockBuilder loop the vectorized packer must match."""
    from repro.lsm.block import BlockBuilder

    blocks = []
    builder = BlockBuilder(block_bytes)
    for key, pointer in entries:
        builder.add(key, pack_value_pointer(pointer))
        if builder.full:
            blocks.append((builder.first_key, builder.finish()))
            builder = BlockBuilder(block_bytes)
    if not builder.empty:
        blocks.append((builder.first_key, builder.finish()))
    return blocks


@pytest.mark.parametrize(
    "n,klen,block_bytes",
    [
        (300, 16, 4096),   # vectorized path, partial tail block
        (412, 9, 4096),    # odd key width
        (300, 16, 64),     # minimum block size -> one entry per block
        (320, 16, 40 * 8), # block boundary exactly at a full block
        (256, 16, 4096),   # exactly the vectorization threshold
        (255, 16, 4096),   # one below the threshold (builder loop)
    ],
)
def test_pidx_blocks_vectorized_matches_builder(n, klen, block_bytes):
    rng = np.random.default_rng(7)
    raw = sorted({bytes(rng.integers(0, 256, size=klen, dtype=np.uint8)) for _ in range(n)})
    entries = [(key, (i % 8, i * 128, 64 + (i % 3))) for i, key in enumerate(raw)]
    assert build_pidx_blocks(entries, block_bytes) == _reference_pidx_blocks(
        entries, block_bytes
    )


def test_pidx_blocks_vectorized_handles_nul_bytes_and_duplicates():
    # Trailing/embedded NULs exercise numpy's "S" comparison semantics;
    # adjacent duplicate keys are legal for BlockBuilder and must stay legal.
    base = [bytes([i]) + b"\x00" * 6 + bytes([255 - i]) for i in range(200)]
    keys = sorted(base * 2)
    entries = [(key, (0, i * 64, 64)) for i, key in enumerate(keys)]
    assert build_pidx_blocks(entries, 1024) == _reference_pidx_blocks(entries, 1024)


def test_pidx_blocks_variable_width_keys_fall_back():
    entries = sorted(
        ((f"k-{i:04d}".encode() * (1 + i % 3), (0, i * 64, 64)) for i in range(400)),
        key=lambda e: e[0],
    )
    assert build_pidx_blocks(entries, 2048) == _reference_pidx_blocks(entries, 2048)


def test_pidx_blocks_unsorted_input_still_raises():
    entries = [(f"k{i:05d}".encode(), (0, i, 8)) for i in range(300)]
    entries[150], entries[10] = entries[10], entries[150]
    with pytest.raises(DbError):
        build_pidx_blocks(entries, 4096)
