"""Tests for the device's explicit fsync (durability point)."""

import pytest

from repro.errors import KeyspaceStateError

from tests.core.conftest import CsdTestbed, make_pairs


def test_fsync_flushes_membuf_to_zones():
    tb = CsdTestbed()
    pairs = make_pairs(100)  # far below the 192 KB membuf threshold

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        written_before = tb.ssd.stats.bytes_written
        yield from tb.client.fsync("ks", tb.ctx)
        return tb.ssd.stats.bytes_written - written_before

    flushed = tb.run(proc())
    user_bytes = sum(len(k) + len(v) for k, v in pairs)
    assert flushed >= user_bytes  # values + klog records reached the zones
    assert tb.device.stats.counter("fsyncs").value == 1
    assert len(tb.device._membufs["ks"]) == 0


def test_fsync_idempotent_when_buffer_empty():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)

    tb.run(proc())
    assert tb.device.stats.counter("fsyncs").value == 2


def test_fsync_on_empty_keyspace_is_noop():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)

    tb.run(proc())  # no error


def test_fsync_rejected_after_compaction():
    tb = CsdTestbed()

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", make_pairs(10), tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)

    with pytest.raises(KeyspaceStateError):
        tb.run(proc())


def test_fsynced_data_queryable_after_compaction():
    tb = CsdTestbed()
    pairs = make_pairs(50)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.fsync("ks", tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        value = yield from tb.client.get("ks", pairs[25][0], tb.ctx)
        return value

    assert tb.run(proc()) == pairs[25][1]
