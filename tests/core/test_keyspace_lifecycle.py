"""Keyspace state-machine coverage + free-list rebuild round-trips.

Section IV's 4-state lifecycle admits exactly three transitions
(EMPTY -> WRITABLE -> COMPACTING -> COMPACTED, with WRITABLE idempotent);
every other combination must be rejected by ``Keyspace.require`` with a
:class:`KeyspaceStateError`.  The second half checks that
``ZoneManager.rebuild_free_list`` is conservative: an allocate/release
round-trip followed by a rebuild leaves the free pool exactly as it began.
"""

import numpy as np
import pytest

from repro.core.keyspace import Keyspace, KeyspaceState
from repro.core.zone_manager import ZoneManager
from repro.errors import KeyspaceStateError
from repro.sim import Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB


def ks_in(state: KeyspaceState) -> Keyspace:
    return Keyspace(name="ks", state=state)


# -- legal path ----------------------------------------------------------------
def test_legal_lifecycle_path():
    ks = ks_in(KeyspaceState.EMPTY)
    ks.open_for_write()
    assert ks.state is KeyspaceState.WRITABLE
    ks.open_for_write()  # idempotent while WRITABLE
    assert ks.state is KeyspaceState.WRITABLE
    ks.begin_compaction()
    assert ks.state is KeyspaceState.COMPACTING
    ks.finish_compaction()
    assert ks.state is KeyspaceState.COMPACTED


# -- every illegal transition, one test per (op, state) ------------------------
@pytest.mark.parametrize(
    "state", [KeyspaceState.COMPACTING, KeyspaceState.COMPACTED]
)
def test_open_for_write_rejected(state):
    ks = ks_in(state)
    with pytest.raises(KeyspaceStateError):
        ks.open_for_write()
    assert ks.state is state  # failed transition leaves state untouched


@pytest.mark.parametrize(
    "state",
    [KeyspaceState.EMPTY, KeyspaceState.COMPACTING, KeyspaceState.COMPACTED],
)
def test_begin_compaction_rejected(state):
    ks = ks_in(state)
    with pytest.raises(KeyspaceStateError):
        ks.begin_compaction()
    assert ks.state is state


@pytest.mark.parametrize(
    "state",
    [KeyspaceState.EMPTY, KeyspaceState.WRITABLE, KeyspaceState.COMPACTED],
)
def test_finish_compaction_rejected(state):
    ks = ks_in(state)
    with pytest.raises(KeyspaceStateError):
        ks.finish_compaction()
    assert ks.state is state


def test_require_error_names_keyspace_and_states():
    ks = ks_in(KeyspaceState.EMPTY)
    with pytest.raises(KeyspaceStateError, match="'ks'.*empty.*writable"):
        ks.require(KeyspaceState.WRITABLE)


def test_require_accepts_any_listed_state():
    ks = ks_in(KeyspaceState.COMPACTING)
    ks.require(KeyspaceState.WRITABLE, KeyspaceState.COMPACTING)  # no raise


# -- free-list rebuild ---------------------------------------------------------
def make_zm(env, **kw):
    ssd = ZnsSsd(
        env,
        geometry=SsdGeometry(n_channels=4, n_zones=16, zone_size=256 * KiB),
    )
    return ZoneManager(ssd, np.random.default_rng(0), cluster_zones=4), ssd


def test_rebuild_free_list_round_trip_preserves_count():
    env = Environment()
    zm, ssd = make_zm(env)
    before = zm.free_zone_count
    cluster = zm.allocate_cluster(4)

    def proc():
        yield from cluster.append_group(b"payload")
        yield from zm.release_cluster(cluster)

    env.run(env.process(proc()))
    zm.rebuild_free_list()
    assert zm.free_zone_count == before
    assert sorted(zm.introspect()["free_zones"]) == list(range(16))


def test_rebuild_free_list_drops_non_empty_zones():
    env = Environment()
    zm, ssd = make_zm(env)
    # A zone that is in the free pool but (illegally) holds data — e.g. an
    # orphan discovered during recovery — must be evicted by the rebuild.
    dirty = zm._free[0]

    def proc():
        yield from ssd.append(dirty, b"orphan bytes")

    env.run(env.process(proc()))
    zm.rebuild_free_list()
    assert dirty not in zm._free
    assert zm.free_zone_count == 15


def test_rebuild_free_list_keeps_marked_used_zones_excluded():
    env = Environment()
    zm, _ = make_zm(env)
    zm.mark_used([3, 5])
    zm.rebuild_free_list()
    # rebuild intersects with the current pool: recovered-in-use zones stay
    # out even though their SSD state is still EMPTY
    assert 3 not in zm._free and 5 not in zm._free
    assert zm.free_zone_count == 14
