"""Durable metadata codec: framing, CRC detection, stream selection."""

import pytest

from repro.core import metadata as legacy
from repro.core.keyspace import Keyspace, KeyspaceState
from repro.core.meta import (
    META_V1,
    META_V2,
    MAGIC,
    MetaCodec,
    choose_stream,
)
from repro.core.pidx import PidxSketch
from repro.core.sidx import SidxConfig, SidxSketch
from repro.core.zone_manager import ZoneCluster
from repro.errors import DbError
from repro.lsm.bloom import BloomFilter
from repro.sim import Environment
from repro.ssd import ZnsSsd


@pytest.fixture
def ssd():
    return ZnsSsd(Environment())


def make_keyspace(ssd, with_blooms=True) -> Keyspace:
    """A COMPACTED keyspace exercising every record section."""
    ks = Keyspace(
        name="ks",
        state=KeyspaceState.COMPACTED,
        n_pairs=4,
        min_key=b"a",
        max_key=b"d",
    )
    ks.pidx_clusters = [ZoneCluster(ssd, [4, 5], rotation=0)]
    ks.sorted_value_clusters = [ZoneCluster(ssd, [6], rotation=0)]
    sketch = PidxSketch()
    sketch.add_block(b"a", (4, 0, 128))
    sketch.add_block(b"c", (5, 0, 96))
    sidx_sketch = SidxSketch(skey_width=4)
    sidx_sketch.add_block(b"\x00" * 4, (7, 0, 64))
    if with_blooms:
        for idx, keys in enumerate([[b"a", b"b"], [b"c", b"d"]]):
            bloom = BloomFilter(len(keys), bits_per_key=10)
            bloom.add_many(keys)
            sketch.attach_bloom(idx, bloom)
        sbloom = BloomFilter(2, bits_per_key=10)
        sbloom.add_many([b"\x00\x00\x00\x01", b"\x00\x00\x00\x02"])
        sidx_sketch.attach_bloom(0, sbloom)
    ks.pidx_sketch = sketch
    config = SidxConfig("tag", value_offset=0, width=4)
    ks.sidx["tag"] = (config, sidx_sketch)
    ks.sidx_clusters["tag"] = [ZoneCluster(ssd, [7], rotation=0)]
    return ks


def assert_keyspace_equal(a: Keyspace, b: Keyspace) -> None:
    assert a.name == b.name
    assert a.state == b.state
    assert a.n_pairs == b.n_pairs
    assert (a.min_key, a.max_key) == (b.min_key, b.max_key)
    for field in ("klog_clusters", "vlog_clusters", "pidx_clusters",
                  "sorted_value_clusters"):
        assert [c.zone_ids for c in getattr(a, field)] == [
            c.zone_ids for c in getattr(b, field)
        ]
    if a.pidx_sketch is None:
        assert b.pidx_sketch is None
    else:
        assert a.pidx_sketch.pivots == b.pidx_sketch.pivots
        assert a.pidx_sketch.block_pointers == b.pidx_sketch.block_pointers
    assert set(a.sidx) == set(b.sidx)


def test_v1_framing_matches_legacy_stream(ssd):
    """MetaCodec(v1) must emit the historical byte stream exactly."""
    ks = make_keyspace(ssd, with_blooms=False)
    assert MetaCodec(META_V1).encode_upsert(ks, 41) == legacy.encode_upsert(ks, 41)
    assert MetaCodec(META_V1).encode_delete("ks") == legacy.encode_delete("ks")


def test_v1_stream_parses_with_both_readers(ssd):
    ks = make_keyspace(ssd, with_blooms=False)
    codec = MetaCodec(META_V1)
    blob = codec.encode_upsert(ks, 41) + codec.encode_delete("gone")
    stream = codec.parse_stream(blob, ssd)
    assert not stream.torn
    assert stream.records == 2
    recovered, last_seq = stream.table["ks"]
    assert last_seq == 41
    assert_keyspace_equal(ks, recovered)
    assert legacy.replay_records(blob, ssd).keys() == stream.table.keys()


def test_v2_roundtrip_reattaches_blooms(ssd):
    ks = make_keyspace(ssd, with_blooms=True)
    codec = MetaCodec(META_V2)
    blob = codec.encode_upsert(ks, 99)
    assert blob.startswith(MAGIC)
    stream = codec.parse_stream(blob, ssd)
    recovered, last_seq = stream.table["ks"]
    assert last_seq == 99
    assert_keyspace_equal(ks, recovered)
    # the annex restored every per-block bloom, byte-identical behavior
    assert set(recovered.pidx_sketch.blooms) == {0, 1}
    assert recovered.pidx_sketch.may_contain(0, b"a")
    assert recovered.pidx_sketch.may_contain(1, b"c")
    assert recovered.sidx["tag"][1].may_contain(0, b"\x00\x00\x00\x01")
    assert stream.bloom_bytes["ks"] > 0


def test_v2_torn_tail_keeps_intact_prefix(ssd):
    ks = make_keyspace(ssd)
    codec = MetaCodec(META_V2)
    first = codec.encode_upsert(ks, 7)
    second = codec.encode_delete("other")
    blob = first + second[: len(second) // 2]
    stream = codec.parse_stream(blob, ssd)
    assert stream.torn
    assert stream.records == 1
    assert "ks" in stream.table


def test_v1_length_colliding_with_magic_still_parses(ssd):
    """A v1 record whose little-endian length prefix starts with b"KM"
    (length ≡ 0x4D4B mod 2**16 — a plausible ~19 KB record) must be retried
    under the v1 interpretation, not misread as a torn v2 frame."""
    codec = MetaCodec(META_V1)
    # delete payload = type byte + u16 name length + name
    name = "k" * (0x4D4B - 3)
    blob = codec.encode_delete(name) + codec.encode_upsert(
        make_keyspace(ssd, with_blooms=False), 5
    )
    assert blob.startswith(MAGIC)  # the collision is real
    stream = codec.parse_stream(blob, ssd)
    assert not stream.torn
    assert stream.crc_failures == 0
    assert stream.records == 2
    assert "ks" in stream.table


def test_v2_crc_failure_stops_replay(ssd):
    ks = make_keyspace(ssd)
    codec = MetaCodec(META_V2)
    first = codec.encode_delete("gone")
    second = bytearray(codec.encode_upsert(ks, 7))
    second[-1] ^= 0xFF  # corrupt the payload; the frame length is intact
    stream = codec.parse_stream(first + bytes(second), ssd)
    assert stream.torn
    assert stream.crc_failures == 1
    assert stream.records == 1
    assert "ks" not in stream.table


def test_delete_record_drops_entry(ssd):
    ks = make_keyspace(ssd)
    codec = MetaCodec(META_V2)
    blob = codec.encode_upsert(ks, 7) + codec.encode_delete("ks")
    stream = codec.parse_stream(blob, ssd)
    assert stream.table == {}
    assert stream.bloom_bytes == {}


def test_mixed_framing_auto_detects_per_record(ssd):
    """A device upgraded mid-life appends v2 records after a v1 stream."""
    ks = make_keyspace(ssd, with_blooms=False)
    blob = MetaCodec(META_V1).encode_upsert(ks, 3)
    ks2 = make_keyspace(ssd, with_blooms=True)
    ks2.name = "ks2"
    blob += MetaCodec(META_V2).encode_upsert(ks2, 9)
    stream = MetaCodec(META_V1).parse_stream(blob, ssd)
    assert not stream.torn
    assert sorted(stream.table) == ["ks", "ks2"]
    assert stream.table["ks2"][0].pidx_sketch.blooms  # annex applied


def test_checkpoint_sealing_and_choose_stream(ssd):
    ks = make_keyspace(ssd)
    codec = MetaCodec(META_V2)
    sealed = codec.parse_stream(
        codec.encode_epoch(2) + codec.encode_upsert(ks, 7) + codec.encode_commit(2),
        ssd,
    )
    assert sealed.epoch == 2
    assert sealed.sealed
    # a torn checkpoint: EPOCH landed but COMMIT did not
    unsealed = codec.parse_stream(
        codec.encode_epoch(3) + codec.encode_upsert(ks, 8), ssd
    )
    assert unsealed.epoch == 3
    assert not unsealed.sealed
    # mount must fall back to the sealed epoch-2 stream
    assert choose_stream([sealed, unsealed]) is sealed
    # the epoch-0 append-only stream is sealed by convention
    fresh = codec.parse_stream(codec.encode_upsert(ks, 1), ssd)
    assert fresh.sealed
    assert choose_stream([fresh, sealed]) is sealed


def test_unknown_version_rejected():
    with pytest.raises(DbError):
        MetaCodec(3)
