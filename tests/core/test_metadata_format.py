"""Unit tests for the keyspace-table serialization (metadata zone records)."""

import pytest

from repro.core.keyspace import Keyspace, KeyspaceState
from repro.core.metadata import encode_delete, encode_upsert, replay_records
from repro.core.pidx import PidxSketch
from repro.core.sidx import SidxConfig, SidxSketch
from repro.core.zone_manager import ZoneCluster
from repro.sim import Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import MiB


@pytest.fixture
def ssd():
    env = Environment()
    return ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=8, zone_size=MiB))


def rich_keyspace(ssd):
    ks = Keyspace(name="vpic-3", state=KeyspaceState.COMPACTED)
    ks.n_pairs = 12345
    ks.min_key = b"\x00aaa"
    ks.max_key = b"zzz\xff"
    ks.pidx_clusters = [ZoneCluster(ssd, [2, 3], rotation=1)]
    ks.sorted_value_clusters = [ZoneCluster(ssd, [4, 5], rotation=0)]
    sketch = PidxSketch()
    sketch.add_block(b"aaa", (2, 0, 4096))
    sketch.add_block(b"mmm", (3, 4096, 4096))
    ks.pidx_sketch = sketch
    config = SidxConfig("energy", value_offset=8, width=4, dtype="f32")
    sidx_sketch = SidxSketch(skey_width=4)
    sidx_sketch.add_block(b"\x80\x00\x00\x00pkey", (6, 0, 4096))
    ks.sidx["energy"] = (config, sidx_sketch)
    ks.sidx_clusters["energy"] = [ZoneCluster(ssd, [6], rotation=0)]
    return ks


def test_upsert_roundtrip(ssd):
    ks = rich_keyspace(ssd)
    blob = encode_upsert(ks, last_seq=999)
    table = replay_records(blob, ssd)
    assert set(table) == {"vpic-3"}
    recovered, last_seq = table["vpic-3"]
    assert last_seq == 999
    assert recovered.state == KeyspaceState.COMPACTED
    assert recovered.n_pairs == 12345
    assert recovered.min_key == b"\x00aaa"
    assert recovered.max_key == b"zzz\xff"
    assert [c.zone_ids for c in recovered.pidx_clusters] == [[2, 3]]
    assert recovered.pidx_clusters[0].rotation == 1
    assert recovered.pidx_sketch.pivots == [b"aaa", b"mmm"]
    assert recovered.pidx_sketch.block_pointers == [(2, 0, 4096), (3, 4096, 4096)]
    config, sketch = recovered.sidx["energy"]
    assert config.dtype == "f32" and config.value_offset == 8
    assert sketch.skey_width == 4
    assert sketch.pivots == [b"\x80\x00\x00\x00pkey"]
    assert [c.zone_ids for c in recovered.sidx_clusters["energy"]] == [[6]]


def test_writable_keyspace_roundtrip(ssd):
    ks = Keyspace(name="w", state=KeyspaceState.WRITABLE)
    ks.klog_clusters = [ZoneCluster(ssd, [1], rotation=0)]
    ks.vlog_clusters = [ZoneCluster(ssd, [2, 3], rotation=1)]
    blob = encode_upsert(ks, last_seq=7)
    recovered, last_seq = replay_records(blob, ssd)["w"]
    assert recovered.state == KeyspaceState.WRITABLE
    assert recovered.min_key is None and recovered.max_key is None
    assert recovered.pidx_sketch is None
    assert [c.zone_ids for c in recovered.vlog_clusters] == [[2, 3]]
    assert last_seq == 7


def test_later_records_supersede(ssd):
    ks1 = Keyspace(name="ks", state=KeyspaceState.WRITABLE)
    ks2 = Keyspace(name="ks", state=KeyspaceState.COMPACTED)
    ks2.n_pairs = 42
    blob = encode_upsert(ks1, 1) + encode_upsert(ks2, 2)
    recovered, last_seq = replay_records(blob, ssd)["ks"]
    assert recovered.state == KeyspaceState.COMPACTED
    assert recovered.n_pairs == 42


def test_delete_record_drops_entry(ssd):
    ks = Keyspace(name="doomed", state=KeyspaceState.WRITABLE)
    blob = encode_upsert(ks, 1) + encode_delete("doomed")
    assert replay_records(blob, ssd) == {}
    # delete of an unknown name is harmless
    assert replay_records(encode_delete("ghost"), ssd) == {}


def test_torn_tail_record_stops_replay(ssd):
    ks1 = Keyspace(name="a", state=KeyspaceState.WRITABLE)
    ks2 = Keyspace(name="b", state=KeyspaceState.WRITABLE)
    blob = encode_upsert(ks1, 1) + encode_upsert(ks2, 2)
    torn = blob[:-5]  # power failed mid-append of the second record
    table = replay_records(torn, ssd)
    assert set(table) == {"a"}


def test_multiple_keyspaces(ssd):
    records = b"".join(
        encode_upsert(Keyspace(name=f"ks-{i}", state=KeyspaceState.EMPTY), i)
        for i in range(5)
    )
    table = replay_records(records, ssd)
    assert sorted(table) == [f"ks-{i}" for i in range(5)]
