"""Tests for the batched multi_get API."""

import pytest

from tests.core.conftest import CsdTestbed, make_pairs


@pytest.fixture
def loaded():
    tb = CsdTestbed()
    pairs = make_pairs(4000)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    return tb, pairs


def test_multi_get_returns_all_present_keys(loaded):
    tb, pairs = loaded
    wanted = [pairs[i][0] for i in (0, 17, 512, 3999)]

    def proc():
        result = yield from tb.client.multi_get("ks", wanted, tb.ctx)
        return result

    result = tb.run(proc())
    assert set(result) == set(wanted)
    by_key = dict(pairs)
    assert all(result[k] == by_key[k] for k in wanted)


def test_multi_get_omits_missing_keys(loaded):
    tb, pairs = loaded

    def proc():
        result = yield from tb.client.multi_get(
            "ks", [pairs[5][0], b"absent-key-000!!"], tb.ctx
        )
        return result

    result = tb.run(proc())
    assert set(result) == {pairs[5][0]}


def test_multi_get_empty_batch(loaded):
    tb, _ = loaded

    def proc():
        result = yield from tb.client.multi_get("ks", [], tb.ctx)
        return result

    assert tb.run(proc()) == {}


def test_multi_get_cheaper_than_individual_gets(loaded):
    tb, pairs = loaded
    # clustered keys: consecutive records share PIDX blocks and value pages
    wanted = [pairs[i][0] for i in range(100, 164)]

    reads_before = tb.ssd.stats.read_ops
    t0 = tb.env.now

    def batched():
        result = yield from tb.client.multi_get("ks", wanted, tb.ctx)
        return result

    tb.run(batched())
    batched_reads = tb.ssd.stats.read_ops - reads_before
    batched_time = tb.env.now - t0

    reads_before = tb.ssd.stats.read_ops
    t0 = tb.env.now

    def singles():
        for key in wanted:
            yield from tb.client.get("ks", key, tb.ctx)

    tb.run(singles())
    single_reads = tb.ssd.stats.read_ops - reads_before
    single_time = tb.env.now - t0

    assert batched_reads < single_reads / 4
    assert batched_time < single_time / 2


def test_multi_get_duplicate_keys(loaded):
    tb, pairs = loaded

    def proc():
        result = yield from tb.client.multi_get(
            "ks", [pairs[9][0], pairs[9][0]], tb.ctx
        )
        return result

    result = tb.run(proc())
    assert result == {pairs[9][0]: pairs[9][1]}
