"""Determinism tests for the multi-core pipelined compaction path.

The sharded sort + pipelined materialisation must be an *optimisation
only*: for any ``compaction_shards`` the device must produce byte-identical
PIDX and SORTED_VALUES output to the serial path, answer queries
identically, and spread its CPU time over multiple SoC cores.
"""

import pytest

from repro.errors import KeyNotFoundError

from tests.core.conftest import CsdTestbed, make_pairs

N_PAIRS = 4000


def load_and_compact(shards, pairs):
    tb = CsdTestbed(compaction_shards=shards)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(proc())
    return tb


def read_extents(tb, pointers):
    blobs = []

    def proc():
        for zone_id, offset, length in pointers:
            data = yield from tb.ssd.read(zone_id, offset, length)
            blobs.append(data)

    tb.run(proc())
    return blobs


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_compaction_byte_identical_to_serial(shards):
    pairs = make_pairs(N_PAIRS)
    serial = load_and_compact(1, pairs)
    sharded = load_and_compact(shards, pairs)
    a = serial.device.keyspaces["ks"].pidx_sketch
    b = sharded.device.keyspaces["ks"].pidx_sketch
    assert a.pivots == b.pivots
    assert a.block_pointers == b.block_pointers
    # the blocks on the media — pointers AND contents — must match, which
    # covers the packed value pointers into SORTED_VALUES as well
    assert read_extents(serial, a.block_pointers) == read_extents(
        sharded, b.block_pointers
    )


def test_sharded_compaction_answers_queries_identically():
    pairs = make_pairs(N_PAIRS)
    tb = load_and_compact(4, pairs)
    sample = pairs[:: max(1, N_PAIRS // 64)]

    def proc():
        for key, value in sample:
            got = yield from tb.client.get("ks", key, tb.ctx)
            assert got == value
        try:
            yield from tb.client.get("ks", b"absent-key-000000", tb.ctx)
        except KeyNotFoundError:
            return "missing"

    assert tb.run(proc()) == "missing"


def test_sharded_compaction_spreads_soc_cores():
    pairs = make_pairs(N_PAIRS)
    serial = load_and_compact(1, pairs)
    sharded = load_and_compact(4, pairs)
    assert sum(1 for t in sharded.board.cpu.busy_time if t > 0) >= 2
    # parallelism must not change the total result; it should not slow the
    # device down either
    s = serial.device.job_durations[("ks", "compaction")]
    p = sharded.device.job_durations[("ks", "compaction")]
    assert p <= s


def test_shards_clamped_to_core_count():
    tb = CsdTestbed(compaction_shards=64)
    assert tb.device.compaction_shards == tb.board.spec.n_cores
