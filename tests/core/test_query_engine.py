"""Unit tests for the device-side query engine internals."""

import pytest

from repro.core import CsdCostModel
from repro.core.query import QueryEngine
from repro.sim import Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import MiB


def make_engine():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    return QueryEngine(ssd, CsdCostModel(), scale_cpu=lambda s: s), env, ssd


# ------------------------------------------------------------------ coalescing
def test_coalesce_adjacent_pointers_merge():
    engine, _, _ = make_engine()
    pointers = [(0, 0, 100), (0, 100, 100), (0, 200, 100)]
    extents = engine._coalesce(pointers)
    assert len(extents) == 1
    (zone, off, length), members = extents[0]
    assert zone == 0 and off == 0
    assert length == 4096  # page aligned
    assert sorted(members) == [0, 1, 2]


def test_coalesce_same_page_scattered_hits_merge():
    """Scattered records within one 4 KiB page cost a single media read."""
    engine, _, _ = make_engine()
    pointers = [(0, 10, 32), (0, 2000, 32), (0, 3900, 32)]
    extents = engine._coalesce(pointers)
    assert len(extents) == 1


def test_coalesce_distant_pages_stay_separate():
    engine, _, _ = make_engine()
    pointers = [(0, 0, 32), (0, 100 * 4096, 32)]
    extents = engine._coalesce(pointers)
    assert len(extents) == 2


def test_coalesce_across_zones_never_merges():
    engine, _, _ = make_engine()
    pointers = [(0, 0, 32), (1, 0, 32)]
    extents = engine._coalesce(pointers)
    assert len(extents) == 2
    assert {e[0][0] for e in extents} == {0, 1}


def test_coalesce_preserves_input_index_mapping():
    engine, _, _ = make_engine()
    pointers = [(0, 5000, 32), (0, 100, 32)]  # out of order
    extents = engine._coalesce(pointers)
    members = [m for _e, ms in extents for m in ms]
    assert sorted(members) == [0, 1]


def test_fetch_values_roundtrip_with_page_reads():
    engine, env, ssd = make_engine()
    values = [bytes([i]) * 50 for i in range(20)]

    def proc():
        pointers = []
        for v in values:
            off = yield from ssd.append(0, v)
            pointers.append((0, off, len(v)))
        # fetch in a scrambled order
        order = list(range(20))[::-1]
        scrambled = [pointers[i] for i in order]
        from repro.host.threads import ThreadCtx
        from repro.sim import CpuPool

        ctx = ThreadCtx(cpu=CpuPool(env, 1))
        got = yield from engine._fetch_values(scrambled, ctx)
        return [got[order.index(i)] for i in range(20)]

    got = env.run(env.process(proc()))
    assert got == values


def test_fetch_values_clips_partial_tail_page():
    """Values near the zone's write pointer must not read past it."""
    engine, env, ssd = make_engine()

    def proc():
        off = yield from ssd.append(0, b"v" * 100)  # zone holds 100 bytes only
        from repro.host.threads import ThreadCtx
        from repro.sim import CpuPool

        ctx = ThreadCtx(cpu=CpuPool(env, 1))
        got = yield from engine._fetch_values([(0, off, 100)], ctx)
        return got[0]

    assert env.run(env.process(proc())) == b"v" * 100


def test_fetch_values_fewer_reads_than_records_when_clustered():
    engine, env, ssd = make_engine()

    def proc():
        pointers = []
        for i in range(64):
            off = yield from ssd.append(0, bytes([i]) * 32)
            pointers.append((0, off, 32))
        reads_before = ssd.stats.read_ops
        from repro.host.threads import ThreadCtx
        from repro.sim import CpuPool

        ctx = ThreadCtx(cpu=CpuPool(env, 1))
        yield from engine._fetch_values(pointers, ctx)
        return ssd.stats.read_ops - reads_before

    n_reads = env.run(env.process(proc()))
    assert n_reads <= 2  # 64 x 32B = 2KB -> one or two page reads, not 64


# ------------------------------------------------------------------ cost model
@pytest.mark.parametrize(
    "entries,steps", [(0, 1), (1, 1), (2, 1), (3, 2), (128, 7), (129, 8)]
)
def test_binary_search_cost_scales_with_log_entries(entries, steps):
    costs = CsdCostModel()
    assert costs.binary_search(entries) == pytest.approx(costs.key_compare * steps)


def test_shard_split_contiguous_and_complete():
    ids = list(range(11))
    slices = QueryEngine._split_ids(ids, 4)
    assert [x for s in slices for x in s] == ids  # slice order == serial order
    assert max(len(s) for s in slices) - min(len(s) for s in slices) <= 1
