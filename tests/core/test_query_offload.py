"""Tests for the multi-core query scheduler and per-block bloom filters.

The scheduler and the blooms are *optimisations only*: for any
``query_workers``/``bloom_bits_per_key`` the device must answer every query
byte-identically to the serial inline engine, while skipping block reads
for keys the blooms prove absent and accounting bloom DRAM against the
SoC budget.
"""

import pytest

from repro.errors import KeyNotFoundError, KeyspaceStateError, SimulationError
from repro.obs.journal import install_journal

from tests.core.conftest import CsdTestbed, make_pairs

N_PAIRS = 4000


def load_and_compact(tb, pairs, sidx=False):
    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)
        if sidx:
            yield from tb.client.build_secondary_index(
                "ks", "head", 0, 4, "bytes", tb.ctx
            )
            yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(proc())
    return tb


@pytest.fixture
def loaded_parallel():
    tb = CsdTestbed(query_workers=4, bloom_bits_per_key=10)
    pairs = make_pairs(N_PAIRS)
    return load_and_compact(tb, pairs), pairs


def query_fingerprint(tb, pairs):
    """Every query kind's results, in a comparable structure."""
    sample = [pairs[i][0] for i in range(0, N_PAIRS, N_PAIRS // 48)]
    lo, hi = pairs[N_PAIRS // 4][0], pairs[3 * N_PAIRS // 4][0]
    out = {}

    def proc():
        out["gets"] = []
        for key in sample:
            out["gets"].append((yield from tb.client.get("ks", key, tb.ctx)))
        out["multi"] = sorted(
            (yield from tb.client.multi_get("ks", sample, tb.ctx)).items()
        )
        out["range"] = yield from tb.client.range_query("ks", lo, hi, tb.ctx)
        out["sidx_range"] = yield from tb.client.sidx_range_query(
            "ks", "head", pairs[0][1][:4], pairs[0][1][:3] + b"\xff", tb.ctx
        )
        out["sidx_point"] = yield from tb.client.sidx_point_query(
            "ks", "head", pairs[7][1][:4], tb.ctx
        )
        try:
            yield from tb.client.get("ks", b"absent-key-00000", tb.ctx)
        except KeyNotFoundError:
            out["absent"] = "missing"

    tb.run(proc())
    return out


@pytest.mark.parametrize("workers,bloom_bits", [(1, 0), (2, 10), (4, 10)])
def test_scheduler_results_byte_identical_to_serial(workers, bloom_bits):
    pairs = make_pairs(N_PAIRS)
    serial = load_and_compact(CsdTestbed(), pairs, sidx=True)
    parallel = load_and_compact(
        CsdTestbed(query_workers=workers, bloom_bits_per_key=bloom_bits),
        pairs,
        sidx=True,
    )
    assert query_fingerprint(serial, pairs) == query_fingerprint(parallel, pairs)


def test_workers_clamped_to_core_count():
    tb = CsdTestbed(query_workers=64)
    assert tb.device.query_workers == tb.board.spec.n_cores
    assert tb.device.query_scheduler.n_workers == tb.board.spec.n_cores


def test_zero_workers_runs_inline_without_scheduler():
    tb = CsdTestbed()
    assert tb.device.query_scheduler is None


def test_scheduler_requires_a_worker():
    from repro.core.scheduler import QueryScheduler

    tb = CsdTestbed()
    with pytest.raises(SimulationError):
        QueryScheduler(tb.env, tb.board, n_workers=0)


def test_scheduler_drains_and_journals(loaded_parallel):
    tb, pairs = loaded_parallel
    journal = install_journal(tb.env)

    def proc():
        for i in (0, 100, 2000):
            yield from tb.client.get("ks", pairs[i][0], tb.ctx)

    tb.run(proc())
    stats = tb.device.stats.snapshot()
    assert stats["kvcsd.query_admitted"] == stats["kvcsd.query_dispatched"]
    types = {e.type for e in journal.events}
    assert {"query.admit", "query.dispatch"} <= types
    assert tb.device.query_scheduler.depth == 0


def test_scheduler_propagates_query_errors(loaded_parallel):
    tb, _pairs = loaded_parallel

    def proc():
        yield from tb.client.get("ks", b"definitely-not-here", tb.ctx)

    with pytest.raises(KeyNotFoundError):
        tb.run(proc())


# ---------------------------------------------------------------- bloom filters
def test_blooms_skip_absent_key_block_reads(loaded_parallel):
    tb, pairs = loaded_parallel
    # in-range absent keys: the high sequence byte of a real key is never 0xff
    absent = [pairs[i][0][:-1] + b"\xff" for i in range(50, 250, 4)]
    reads_before = tb.device.stats.counter("pidx_block_reads").value
    skips_before = tb.device.stats.counter("bloom_skips").value

    def proc():
        for key in absent:
            try:
                yield from tb.client.get("ks", key, tb.ctx)
            except KeyNotFoundError:
                pass

    tb.run(proc())
    skipped = tb.device.stats.counter("bloom_skips").value - skips_before
    read = tb.device.stats.counter("pidx_block_reads").value - reads_before
    assert skipped + read == len(absent)
    assert skipped >= 0.9 * len(absent)


def test_blooms_never_skip_present_keys(loaded_parallel):
    tb, pairs = loaded_parallel

    def proc():
        for key, value in pairs[:: N_PAIRS // 128]:
            got = yield from tb.client.get("ks", key, tb.ctx)
            assert got == value

    tb.run(proc())
    assert tb.device.stats.counter("bloom_probes").value > 0


def test_bloom_dram_reserved_and_released():
    tb = CsdTestbed(query_workers=0, bloom_bits_per_key=10)
    pairs = make_pairs(N_PAIRS)
    load_and_compact(tb, pairs)
    reserved = tb.device._bloom_dram["ks"]
    assert reserved > 0
    assert tb.board.dram.capacity - tb.board.dram.available >= reserved
    sketch = tb.device.keyspaces["ks"].pidx_sketch
    assert len(sketch.blooms) == len(sketch)
    assert sketch.bloom_bytes == reserved

    def drop():
        yield from tb.client.delete_keyspace("ks", tb.ctx)

    available_before = tb.board.dram.available
    tb.run(drop())
    assert tb.device._bloom_dram == {}
    assert tb.board.dram.available >= available_before + reserved


def test_no_blooms_when_knob_off():
    tb = CsdTestbed()
    pairs = make_pairs(500)
    load_and_compact(tb, pairs, sidx=True)
    ks = tb.device.keyspaces["ks"]
    assert ks.pidx_sketch.blooms == {}
    _config, sidx_sketch = ks.sidx["head"]
    assert sidx_sketch.blooms == {}


def test_sidx_blooms_skip_absent_secondary_keys():
    tb = CsdTestbed(bloom_bits_per_key=10)
    pairs = make_pairs(N_PAIRS)
    load_and_compact(tb, pairs, sidx=True)
    skips_before = tb.device.stats.counter("bloom_skips").value

    def proc():
        # no record's first value byte is 0xfe (values are bytes([i % 256])*32
        # so most exist) — use a width-4 pattern no value contains
        result = yield from tb.client.sidx_point_query(
            "ks", "head", b"\x01\x02\x03\x04", tb.ctx
        )
        return result

    assert tb.run(proc()) == []
    assert tb.device.stats.counter("bloom_skips").value > skips_before


# ---------------------------------------------------------- multi_point_query
@pytest.fixture
def loaded_serial():
    tb = CsdTestbed()
    pairs = make_pairs(N_PAIRS)
    return load_and_compact(tb, pairs), pairs


def test_multi_point_query_duplicate_keys(loaded_serial):
    tb, pairs = loaded_serial
    key, value = pairs[123]

    def proc():
        return (yield from tb.client.multi_get("ks", [key, key, key], tb.ctx))

    assert tb.run(proc()) == {key: value}


def test_multi_point_query_all_absent(loaded_serial):
    tb, pairs = loaded_serial
    absent = [pairs[i][0][:-1] + b"\xff" for i in range(8)]

    def proc():
        return (yield from tb.client.multi_get("ks", absent, tb.ctx))

    assert tb.run(proc()) == {}


def test_multi_point_query_spans_first_and_last_block(loaded_serial):
    tb, pairs = loaded_serial
    sketch = tb.device.keyspaces["ks"].pidx_sketch
    assert len(sketch) >= 2
    ordered = sorted(pairs)
    wanted = [ordered[0][0], ordered[-1][0]]

    def proc():
        return (yield from tb.client.multi_get("ks", wanted, tb.ctx))

    result = tb.run(proc())
    by_key = dict(pairs)
    assert result == {k: by_key[k] for k in wanted}
    # the two keys live at opposite ends of the sketch
    assert sketch.find_block(wanted[0]) == 0
    assert sketch.find_block(wanted[1]) == len(sketch) - 1


# ------------------------------------------------------------ state gating
def test_sidx_point_query_requires_compacted_state():
    tb = CsdTestbed()
    pairs = make_pairs(64)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)

    tb.run(setup())

    def query():
        yield from tb.client.sidx_point_query("ks", "nope", b"\x00" * 4, tb.ctx)

    # the state check must fire before the index lookup: a WRITABLE keyspace
    # reports its state, not a missing-index error
    with pytest.raises(KeyspaceStateError):
        tb.run(query())
