"""Tests for the observability report APIs of both stores."""

from tests.core.conftest import CsdTestbed, make_pairs
from tests.lsm.conftest import LsmTestbed, small_options


def test_device_report_structure():
    tb = CsdTestbed()
    pairs = make_pairs(2000)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(proc())
    report = tb.device.report()
    assert report["keyspaces"]["ks"]["state"] == "compacted"
    assert report["keyspaces"]["ks"]["n_pairs"] == 2000
    assert report["counters"]["pairs_inserted"] == 2000
    assert report["counters"]["compactions"] == 1
    assert report["ssd"]["bytes_written"] > 0
    assert report["soc_busy_seconds"] > 0
    assert report["pending_jobs"] == {}
    assert ("ks", "compaction") in report["job_durations"]
    assert report["free_zones"] < tb.ssd.geometry.n_zones


def test_device_report_pending_jobs_visible():
    tb = CsdTestbed()
    pairs = make_pairs(20_000)

    def proc():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        # report taken while the job is live
        return tb.device.report()

    report = tb.run(proc())
    assert report["pending_jobs"].get("ks") == 1
    assert report["keyspaces"]["ks"]["state"] == "compacting"


def test_lsm_report_structure():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))

    def load():
        for i in range(2000):
            yield from tb.db.put(f"k{i:06d}".encode(), b"v" * 32, tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(load())
    report = tb.db.report()
    assert report["open"]
    assert report["counters"]["puts"] == 2000
    assert report["counters"]["flushes"] >= 1
    assert sum(report["levels"]["files"]) == tb.db.table_count()
    assert sum(report["levels"]["bytes"]) > 0
    assert report["immutable_memtables"] == 0
    assert report["pending_jobs"] == 0
    assert 0.0 <= report["block_cache"]["hit_rate"] <= 1.0
