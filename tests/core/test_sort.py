"""Unit tests for the external merge sort and its planning."""

import numpy as np
import pytest

from repro.core.sort import (
    MERGE_BUFFER_BYTES,
    ExternalSorter,
    ParallelSortCoordinator,
    SortPlan,
    plan_external_sort,
)
from repro.core.zone_manager import ZoneManager
from repro.errors import SimulationError
from repro.host.threads import ThreadCtx
from repro.sim import CpuPool, Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB, MiB


def make_sorter(env, budget_bytes):
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=4, n_zones=64, zone_size=4 * MiB)
    )
    zm = ZoneManager(ssd, np.random.default_rng(0), cluster_zones=4)

    def pack(records):
        parts = []
        for key, payload in records:
            parts.append(len(key).to_bytes(2, "little"))
            parts.append(key)
            parts.append(len(payload).to_bytes(2, "little"))
            parts.append(payload)
        return b"".join(parts)

    def unpack(blob):
        out = []
        pos = 0
        while pos < len(blob):
            klen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            key = blob[pos : pos + klen]
            pos += klen
            plen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            out.append((key, blob[pos : pos + plen]))
            pos += plen
        return out

    sorter = ExternalSorter(
        zm, budget_bytes=budget_bytes, compare_cost=25e-9, pack=pack, unpack=unpack
    )
    return sorter, ssd, zm


def random_records(n, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**62, size=n)
    return [
        (int(k).to_bytes(8, "big"), f"payload-{i}".encode())
        for i, k in enumerate(keys)
    ]


def run_sort(records, budget_bytes, total_bytes=None):
    env = Environment()
    sorter, ssd, zm = make_sorter(env, budget_bytes)
    cpu = CpuPool(env, 2)
    ctx = ThreadCtx(cpu=cpu)
    total = total_bytes if total_bytes is not None else sum(
        len(k) + len(p) + 4 for k, p in records
    )

    def proc():
        out = yield from sorter.sort(records, total, ctx)
        return out

    result = env.run(env.process(proc()))
    return result, sorter, ssd, zm, env


# ------------------------------------------------------------------ planning
def test_plan_single_pass_when_fits():
    plan = plan_external_sort(total_bytes=1000, budget_bytes=10_000)
    assert not plan.spills
    assert plan.n_runs == 1
    assert plan.n_merge_passes == 0
    assert plan.temp_bytes_written == 0


def test_plan_spills_when_over_budget():
    plan = plan_external_sort(total_bytes=10 * MiB, budget_bytes=1 * MiB)
    assert plan.spills
    assert plan.n_runs == 10
    assert plan.n_merge_passes >= 1


def test_plan_multiple_passes_with_small_fanin():
    # budget 512 KiB -> fanin 2; 16 runs need 4 passes.
    plan = SortPlan(total_bytes=16 * 512 * KiB, budget_bytes=512 * KiB)
    assert plan.fanin == 2
    assert plan.n_merge_passes == 4


def test_plan_rejects_zero_budget():
    with pytest.raises(SimulationError):
        SortPlan(total_bytes=100, budget_bytes=0)


# ------------------------------------------------------------------ sorting
def test_in_memory_sort_correct():
    records = random_records(500)
    result, sorter, ssd, _, _ = run_sort(records, budget_bytes=10 * MiB)
    assert result == sorted(records, key=lambda r: r[0])
    assert not sorter.last_plan.spills
    assert ssd.stats.bytes_written == 0  # no temp I/O


def test_spilled_sort_correct_and_uses_temp_zones():
    records = random_records(2000, seed=1)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    result, sorter, ssd, zm, _ = run_sort(records, budget_bytes=total // 5)
    assert result == sorted(records, key=lambda r: r[0])
    assert sorter.last_plan.spills
    assert ssd.stats.bytes_written > 0  # runs were spilled
    assert ssd.stats.bytes_read > 0  # and read back
    # all temp clusters released afterwards
    assert zm.allocated_clusters == 0


def test_multi_pass_sort_correct():
    records = random_records(3000, seed=2)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    # force fanin 2 with a tiny budget: many merge passes
    result, sorter, ssd, zm, _ = run_sort(
        records, budget_bytes=max(1024, total // 16)
    )
    assert result == sorted(records, key=lambda r: r[0])
    assert sorter.last_plan.n_merge_passes >= 2
    assert zm.allocated_clusters == 0


def test_smaller_budget_more_temp_io():
    records = random_records(2000, seed=3)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    _, _, ssd_small, _, _ = run_sort(records, budget_bytes=total // 10)
    _, _, ssd_large, _, _ = run_sort(records, budget_bytes=total // 2)
    assert ssd_small.stats.bytes_written > ssd_large.stats.bytes_written


def test_duplicate_sort_keys_stable_via_key_function():
    env = Environment()
    sorter, _, _ = make_sorter(env, budget_bytes=10 * MiB)
    sorter.sort_key = lambda rec: (rec[0], rec[1])
    records = [(b"same", b"b"), (b"same", b"a"), (b"other", b"z")]
    cpu = CpuPool(env, 1)
    ctx = ThreadCtx(cpu=cpu)

    def proc():
        out = yield from sorter.sort(records, 100, ctx)
        return out

    assert env.run(env.process(proc())) == [
        (b"other", b"z"),
        (b"same", b"a"),
        (b"same", b"b"),
    ]


def test_empty_and_singleton_inputs():
    result, *_ = run_sort([], budget_bytes=1024)
    assert result == []
    result, *_ = run_sort([(b"k", b"v")], budget_bytes=1024)
    assert result == [(b"k", b"v")]


def test_sort_charges_cpu_time():
    records = random_records(1000, seed=4)
    _, _, _, _, env = run_sort(records, budget_bytes=10 * MiB)
    assert env.now > 0


# ------------------------------------------------------- temp I/O accounting
def test_plan_exact_pass_count_near_float_boundary():
    # 125 runs at fan-in 5 need exactly 3 passes (125 -> 25 -> 5 -> out);
    # the old ceil(log(125, 5)) closed form said 4 because the float log
    # lands at 3.0000000000000004.
    budget = 5 * MERGE_BUFFER_BYTES
    plan = SortPlan(total_bytes=125 * budget, budget_bytes=budget)
    assert plan.fanin == 5
    assert plan.n_runs == 125
    assert plan.n_merge_passes == 3
    # same boundary for 216 runs at fan-in 6
    budget = 6 * MERGE_BUFFER_BYTES
    plan = SortPlan(total_bytes=216 * budget, budget_bytes=budget)
    assert plan.n_merge_passes == 3


def test_temp_bytes_written_matches_measured_io():
    # Pin the SortPlan formula to the byte traffic the sorter actually
    # issues: run generation writes the data once, every pass except the
    # (streamed) last rewrites it once -> n_merge_passes copies in total.
    for seed, divisor in [(5, 5), (6, 16)]:
        records = random_records(2000, seed=seed)
        total = sum(len(k) + len(p) + 4 for k, p in records)
        _, sorter, ssd, _, _ = run_sort(records, budget_bytes=total // divisor)
        plan = sorter.last_plan
        assert plan.spills
        assert ssd.stats.bytes_written == plan.temp_bytes_written


def test_split_across_divides_data_and_budget():
    plan = SortPlan(total_bytes=8 * MiB, budget_bytes=4 * MiB)
    shards = plan.split_across(4)
    assert len(shards) == 4
    assert all(p.total_bytes == 2 * MiB for p in shards)
    assert all(p.budget_bytes == 1 * MiB for p in shards)
    assert plan.split_across(1) == [plan]
    with pytest.raises(SimulationError):
        plan.split_across(0)


# ------------------------------------------------------------ parallel sort
def run_parallel_sort(records, budget_bytes, shards, n_cores=4):
    env = Environment()
    sorter, ssd, zm = make_sorter(env, budget_bytes)
    cpu = CpuPool(env, n_cores)
    coord = ParallelSortCoordinator(
        zm,
        budget_bytes=budget_bytes,
        shards=shards,
        compare_cost=25e-9,
        pack=sorter.pack,
        unpack=sorter.unpack,
        make_ctx=lambda: ThreadCtx(cpu=cpu, priority=5),
    )
    ctx = ThreadCtx(cpu=cpu)
    total = sum(len(k) + len(p) + 4 for k, p in records)

    def proc():
        out = yield from coord.sort(records, total, ctx)
        return out

    result = env.run(env.process(proc()))
    return result, coord, ssd, zm, cpu


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_parallel_sort_matches_serial(shards):
    records = random_records(3000, seed=7)
    expected = sorted(records, key=lambda r: r[0])
    result, coord, _, zm, _ = run_parallel_sort(
        records, budget_bytes=10 * MiB, shards=shards
    )
    assert result == expected
    assert 1 <= len(coord.last_plans) <= shards
    assert zm.allocated_clusters == 0


def test_parallel_sort_empty_and_singleton():
    result, *_ = run_parallel_sort([], budget_bytes=1024, shards=4)
    assert result == []
    result, *_ = run_parallel_sort([(b"k", b"v")], budget_bytes=1024, shards=4)
    assert result == [(b"k", b"v")]


def test_parallel_sort_all_keys_equal_collapses_to_one_shard():
    # Pivot dedup leaves a single bucket; the result must stay stable.
    records = [(b"same-key", f"payload-{i}".encode()) for i in range(500)]
    result, coord, _, _, _ = run_parallel_sort(records, budget_bytes=10 * MiB, shards=4)
    assert result == records  # stable: equal keys keep input order
    assert len(coord.last_plans) == 1


def test_parallel_sort_skewed_keys_leave_empty_shards():
    # Nearly all keys identical: most quantile pivots dedup away, so fewer
    # buckets than shards exist; the sort must still be correct and stable.
    records = [(b"hot", f"p{i:04d}".encode()) for i in range(900)]
    records += [(b"z-cold", f"q{i:04d}".encode()) for i in range(10)]
    expected = sorted(records, key=lambda r: r[0])
    result, coord, _, _, _ = run_parallel_sort(records, budget_bytes=10 * MiB, shards=4)
    assert result == expected
    assert len(coord.last_plans) <= 4


def test_parallel_sort_budget_below_one_merge_buffer_per_shard():
    # Shard budget < MERGE_BUFFER_BYTES: fan-in clamps to 2 and the shard
    # sorts spill; output must still match a serial stable sort.
    records = random_records(2000, seed=8)
    expected = sorted(records, key=lambda r: r[0])
    total = sum(len(k) + len(p) + 4 for k, p in records)
    budget = min(4 * (MERGE_BUFFER_BYTES - KiB), max(4096, total // 4))
    assert budget // 4 < MERGE_BUFFER_BYTES
    result, coord, ssd, zm, _ = run_parallel_sort(records, budget_bytes=budget, shards=4)
    assert result == expected
    assert any(p.spills for p in coord.last_plans)
    assert ssd.stats.bytes_written > 0
    assert zm.allocated_clusters == 0


def test_parallel_sort_spreads_work_across_cores():
    records = random_records(4000, seed=9)
    _, _, _, _, cpu = run_parallel_sort(records, budget_bytes=10 * MiB, shards=4)
    # make_ctx hands each shard its own floating context over a 4-core pool,
    # so concurrent shard sorts land on distinct cores
    assert sum(1 for t in cpu.busy_time if t > 0) >= 2


def test_parallel_sort_rejects_bad_shard_count():
    env = Environment()
    sorter, _, zm = make_sorter(env, 1 * MiB)
    with pytest.raises(SimulationError):
        ParallelSortCoordinator(
            zm,
            budget_bytes=1 * MiB,
            shards=0,
            compare_cost=25e-9,
            pack=sorter.pack,
            unpack=sorter.unpack,
        )


# ------------------------------------------------ declared-key vectorized sort
def _compaction_records(n, seed=1, klen=8, dup_every=5):
    """(key, (seq, payload)) records with duplicate keys across seqs."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 2**32, size=n)
    records = []
    for i, k in enumerate(base):
        key = int(k).to_bytes(klen, "big")
        records.append((key, (i, f"p{i}".encode())))
        if i % dup_every == 0:
            records.append((key, (n + i, f"q{i}".encode())))
    return records


@pytest.mark.parametrize("n", [10, 500])
def test_key_seq_desc_sort_matches_python_sorted(n):
    env = Environment()
    sorter, _ssd, _zm = make_sorter(env, budget_bytes=1 * MiB)
    sorter.sort_key = lambda rec: (rec[0], -rec[1][0])
    sorter._key_is_default = False
    sorter._key_kind = "key_seq_desc"
    records = _compaction_records(n)
    expected = sorted(records, key=lambda rec: (rec[0], -rec[1][0]))
    assert sorter._sorted(list(records)) == expected


def test_key_seq_desc_variable_width_keys_fall_back():
    env = Environment()
    sorter, _ssd, _zm = make_sorter(env, budget_bytes=1 * MiB)
    sorter.sort_key = lambda rec: (rec[0], -rec[1][0])
    sorter._key_is_default = False
    sorter._key_kind = "key_seq_desc"
    records = [(b"k" * (1 + i % 3), (i, b"")) for i in range(200)]
    expected = sorted(records, key=lambda rec: (rec[0], -rec[1][0]))
    assert sorter._sorted(list(records)) == expected


def test_coordinator_forwards_key_kind_only_with_custom_key():
    env = Environment()
    _sorter, _ssd, zm = make_sorter(env, budget_bytes=1 * MiB)
    coord = ParallelSortCoordinator(
        zm,
        budget_bytes=1 * MiB,
        shards=2,
        compare_cost=25e-9,
        pack=lambda recs: b"",
        unpack=lambda blob: [],
        key_kind="key_seq_desc",
    )
    # key_kind without a matching sort_key must not engage the lexsort path
    assert coord.key_kind is None
