"""Unit tests for the external merge sort and its planning."""

import numpy as np
import pytest

from repro.core.sort import ExternalSorter, SortPlan, plan_external_sort
from repro.core.zone_manager import ZoneManager
from repro.errors import SimulationError
from repro.host.threads import ThreadCtx
from repro.sim import CpuPool, Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB, MiB


def make_sorter(env, budget_bytes):
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=4, n_zones=64, zone_size=4 * MiB)
    )
    zm = ZoneManager(ssd, np.random.default_rng(0), cluster_zones=4)

    def pack(records):
        parts = []
        for key, payload in records:
            parts.append(len(key).to_bytes(2, "little"))
            parts.append(key)
            parts.append(len(payload).to_bytes(2, "little"))
            parts.append(payload)
        return b"".join(parts)

    def unpack(blob):
        out = []
        pos = 0
        while pos < len(blob):
            klen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            key = blob[pos : pos + klen]
            pos += klen
            plen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            out.append((key, blob[pos : pos + plen]))
            pos += plen
        return out

    sorter = ExternalSorter(
        zm, budget_bytes=budget_bytes, compare_cost=25e-9, pack=pack, unpack=unpack
    )
    return sorter, ssd, zm


def random_records(n, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**62, size=n)
    return [
        (int(k).to_bytes(8, "big"), f"payload-{i}".encode())
        for i, k in enumerate(keys)
    ]


def run_sort(records, budget_bytes, total_bytes=None):
    env = Environment()
    sorter, ssd, zm = make_sorter(env, budget_bytes)
    cpu = CpuPool(env, 2)
    ctx = ThreadCtx(cpu=cpu)
    total = total_bytes if total_bytes is not None else sum(
        len(k) + len(p) + 4 for k, p in records
    )

    def proc():
        out = yield from sorter.sort(records, total, ctx)
        return out

    result = env.run(env.process(proc()))
    return result, sorter, ssd, zm, env


# ------------------------------------------------------------------ planning
def test_plan_single_pass_when_fits():
    plan = plan_external_sort(total_bytes=1000, budget_bytes=10_000)
    assert not plan.spills
    assert plan.n_runs == 1
    assert plan.n_merge_passes == 0
    assert plan.temp_bytes_written == 0


def test_plan_spills_when_over_budget():
    plan = plan_external_sort(total_bytes=10 * MiB, budget_bytes=1 * MiB)
    assert plan.spills
    assert plan.n_runs == 10
    assert plan.n_merge_passes >= 1


def test_plan_multiple_passes_with_small_fanin():
    # budget 512 KiB -> fanin 2; 16 runs need 4 passes.
    plan = SortPlan(total_bytes=16 * 512 * KiB, budget_bytes=512 * KiB)
    assert plan.fanin == 2
    assert plan.n_merge_passes == 4


def test_plan_rejects_zero_budget():
    with pytest.raises(SimulationError):
        SortPlan(total_bytes=100, budget_bytes=0)


# ------------------------------------------------------------------ sorting
def test_in_memory_sort_correct():
    records = random_records(500)
    result, sorter, ssd, _, _ = run_sort(records, budget_bytes=10 * MiB)
    assert result == sorted(records, key=lambda r: r[0])
    assert not sorter.last_plan.spills
    assert ssd.stats.bytes_written == 0  # no temp I/O


def test_spilled_sort_correct_and_uses_temp_zones():
    records = random_records(2000, seed=1)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    result, sorter, ssd, zm, _ = run_sort(records, budget_bytes=total // 5)
    assert result == sorted(records, key=lambda r: r[0])
    assert sorter.last_plan.spills
    assert ssd.stats.bytes_written > 0  # runs were spilled
    assert ssd.stats.bytes_read > 0  # and read back
    # all temp clusters released afterwards
    assert zm.allocated_clusters == 0


def test_multi_pass_sort_correct():
    records = random_records(3000, seed=2)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    # force fanin 2 with a tiny budget: many merge passes
    result, sorter, ssd, zm, _ = run_sort(
        records, budget_bytes=max(1024, total // 16)
    )
    assert result == sorted(records, key=lambda r: r[0])
    assert sorter.last_plan.n_merge_passes >= 2
    assert zm.allocated_clusters == 0


def test_smaller_budget_more_temp_io():
    records = random_records(2000, seed=3)
    total = sum(len(k) + len(p) + 4 for k, p in records)
    _, _, ssd_small, _, _ = run_sort(records, budget_bytes=total // 10)
    _, _, ssd_large, _, _ = run_sort(records, budget_bytes=total // 2)
    assert ssd_small.stats.bytes_written > ssd_large.stats.bytes_written


def test_duplicate_sort_keys_stable_via_key_function():
    env = Environment()
    sorter, _, _ = make_sorter(env, budget_bytes=10 * MiB)
    sorter.sort_key = lambda rec: (rec[0], rec[1])
    records = [(b"same", b"b"), (b"same", b"a"), (b"other", b"z")]
    cpu = CpuPool(env, 1)
    ctx = ThreadCtx(cpu=cpu)

    def proc():
        out = yield from sorter.sort(records, 100, ctx)
        return out

    assert env.run(env.process(proc())) == [
        (b"other", b"z"),
        (b"same", b"a"),
        (b"same", b"b"),
    ]


def test_empty_and_singleton_inputs():
    result, *_ = run_sort([], budget_bytes=1024)
    assert result == []
    result, *_ = run_sort([(b"k", b"v")], budget_bytes=1024)
    assert result == [(b"k", b"v")]


def test_sort_charges_cpu_time():
    records = random_records(1000, seed=4)
    _, _, _, _, env = run_sort(records, budget_bytes=10 * MiB)
    assert env.now > 0
