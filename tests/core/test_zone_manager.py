"""Unit tests for zone clusters and the zone manager."""

import numpy as np
import pytest

from repro.core.zone_manager import ZoneCluster, ZoneManager
from repro.errors import OutOfSpaceError, StorageError, ZoneFullError
from repro.sim import Environment
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB, MiB


def make_zm(env, n_channels=4, n_zones=16, zone_size=256 * KiB, cluster_zones=4, seed=0):
    ssd = ZnsSsd(
        env,
        geometry=SsdGeometry(
            n_channels=n_channels, n_zones=n_zones, zone_size=zone_size
        ),
    )
    return ZoneManager(ssd, np.random.default_rng(seed), cluster_zones), ssd


def run(env, gen):
    return env.run(env.process(gen))


def test_allocate_spreads_across_channels():
    env = Environment()
    zm, ssd = make_zm(env)
    cluster = zm.allocate_cluster(4)
    channels = {ssd.geometry.channel_of_zone(z) for z in cluster.zone_ids}
    assert len(channels) == 4  # one zone per channel


def test_allocate_reduces_free_pool():
    env = Environment()
    zm, _ = make_zm(env)
    before = zm.free_zone_count
    zm.allocate_cluster(4)
    assert zm.free_zone_count == before - 4
    assert zm.allocated_clusters == 1


def test_allocate_exhaustion():
    env = Environment()
    zm, _ = make_zm(env, n_zones=8)
    zm.allocate_cluster(8)
    with pytest.raises(OutOfSpaceError):
        zm.allocate_cluster(1)


def test_release_resets_and_returns_zones():
    env = Environment()
    zm, ssd = make_zm(env)
    cluster = zm.allocate_cluster(4)

    def proc():
        yield from cluster.append_group(b"data")
        yield from zm.release_cluster(cluster)

    run(env, proc())
    assert zm.free_zone_count == 16
    assert zm.allocated_clusters == 0
    assert all(ssd.zone(z).write_pointer == 0 for z in cluster.zone_ids)


def test_append_group_rotates_and_roundtrips():
    env = Environment()
    zm, ssd = make_zm(env)
    cluster = zm.allocate_cluster(4)

    def proc():
        ptrs = []
        for i in range(8):
            ptr = yield from cluster.append_group(f"group-{i}".encode())
            ptrs.append(ptr)
        datas = []
        for i, ptr in enumerate(ptrs):
            data = yield from cluster.read(ptr)
            datas.append(data)
        return ptrs, datas

    ptrs, datas = run(env, proc())
    assert datas == [f"group-{i}".encode() for i in range(8)]
    # 8 groups over 4 zones: each zone took 2 (round-robin)
    zones_used = [z for z, _o, _l in ptrs]
    assert all(zones_used.count(z) == 2 for z in set(zones_used))


def test_rotation_varies_with_rng():
    env = Environment()
    zm_a, _ = make_zm(env, seed=1)
    env2 = Environment()
    zm_b, _ = make_zm(env2, seed=2)
    rotations_a = [zm_a.allocate_cluster(4).rotation for _ in range(4)]
    rotations_b = [zm_b.allocate_cluster(4).rotation for _ in range(4)]
    # different seeds should eventually produce different rotations
    assert rotations_a != rotations_b or len(set(rotations_a)) > 1


def test_append_groups_batch_concurrent_and_correct():
    env = Environment()
    zm, ssd = make_zm(env)
    cluster = zm.allocate_cluster(4)
    groups = [bytes([i]) * 1000 for i in range(8)]

    def proc():
        t0 = env.now
        ptrs = yield from cluster.append_groups(groups)
        append_time = env.now - t0
        datas = []
        for ptr in ptrs:
            data = yield from cluster.read(ptr)
            datas.append(data)
        return ptrs, datas, append_time

    ptrs, datas, append_time = run(env, proc())
    assert datas == groups
    # Batch appends across 4 channels finish faster than 8 serial appends.
    serial_estimate = 8 * ssd.latency.write_time(1000)
    assert append_time < serial_estimate


def test_append_groups_overcommit_rejected_before_io():
    env = Environment()
    zm, ssd = make_zm(env, zone_size=4 * KiB)
    cluster = zm.allocate_cluster(2)
    # two groups that individually fit one zone but not together, plus more
    groups = [b"x" * (3 * KiB)] * 4

    def proc():
        yield from cluster.append_groups(groups)

    env.process(proc())
    with pytest.raises(ZoneFullError):
        env.run()
    # reservation failed before any append: zones untouched
    assert all(ssd.zone(z).write_pointer in (0,) for z in cluster.zone_ids)


def test_append_group_skips_full_zones():
    env = Environment()
    zm, ssd = make_zm(env, zone_size=4 * KiB)
    cluster = zm.allocate_cluster(2)

    def proc():
        ptrs = []
        # 2 groups fill both zones almost completely
        for _ in range(2):
            ptr = yield from cluster.append_group(b"x" * (3 * KiB))
            ptrs.append(ptr)
        # a small group still fits (1 KiB left in each zone)
        ptr = yield from cluster.append_group(b"y" * 512)
        ptrs.append(ptr)
        return ptrs

    ptrs = run(env, proc())
    assert len({z for z, _, _ in ptrs[:2]}) == 2


def test_cluster_capacity_accounting():
    env = Environment()
    zm, _ = make_zm(env, zone_size=4 * KiB)
    cluster = zm.allocate_cluster(2)
    assert cluster.remaining() == 8 * KiB
    assert cluster.max_group() == 4 * KiB

    def proc():
        yield from cluster.append_group(b"z" * 1024)

    run(env, proc())
    assert cluster.remaining() == 7 * KiB
    assert cluster.bytes_stored() == 1024


def test_read_all_returns_zone_contents():
    env = Environment()
    zm, _ = make_zm(env)
    cluster = zm.allocate_cluster(4)

    def proc():
        yield from cluster.append_group(b"alpha")
        yield from cluster.append_group(b"beta")
        contents = yield from cluster.read_all()
        return contents

    contents = run(env, proc())
    blobs = sorted(v for v in contents.values() if v)
    assert blobs == [b"alpha", b"beta"]
    assert len(contents) == 4  # empty zones present with empty bytes


def test_empty_cluster_rejected():
    env = Environment()
    zm, ssd = make_zm(env)
    with pytest.raises(StorageError):
        ZoneCluster(ssd, [], rotation=0)


def test_cluster_size_validation():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    with pytest.raises(StorageError):
        ZoneManager(ssd, np.random.default_rng(0), cluster_zones=0)


def test_reconcile_free_list_preserves_pool_order():
    env = Environment()
    zm, _ = make_zm(env)
    cluster = zm.allocate_cluster(4)
    order_before = list(zm._free)
    reclaimed = zm.reconcile_free_list(set(cluster.zone_ids))
    assert reclaimed == []
    assert zm._free == order_before


def test_reconcile_free_list_adopts_reclaimed_orphans():
    """EMPTY zones the pool lost track of (reset orphans) are re-adopted in
    zone-id order behind the surviving pool."""
    env = Environment()
    zm, ssd = make_zm(env)
    keep = zm.allocate_cluster(4)
    orphaned = zm.allocate_cluster(4)

    def write_then_reset():
        for zone_id in orphaned.zone_ids:
            yield from ssd.append(zone_id, b"partial job output")
        for zone_id in orphaned.zone_ids:
            yield from ssd.reset_zone(zone_id)

    run(env, write_then_reset())
    survivors = list(zm._free)
    reclaimed = zm.reconcile_free_list(set(keep.zone_ids))
    assert reclaimed == sorted(orphaned.zone_ids)
    assert zm._free == survivors + sorted(orphaned.zone_ids)


def test_reconcile_free_list_drops_used_and_nonempty_zones():
    env = Environment()
    zm, ssd = make_zm(env)
    dirty = zm._free[0]

    def write():
        yield from ssd.append(dirty, b"data the pool must not hand out")

    run(env, write())
    reclaimed = zm.reconcile_free_list(set())
    assert reclaimed == []
    assert dirty not in zm._free
    # every pooled zone really is EMPTY and allocatable
    from repro.ssd.zone import ZoneState

    assert all(ssd.zone(z).state == ZoneState.EMPTY for z in zm._free)


def test_sealed_partial_zone_not_appendable():
    """finish_zone at a partial write pointer (mount sealing a torn tail)
    removes the zone from append routing but keeps its data readable."""
    env = Environment()
    zm, ssd = make_zm(env)
    cluster = zm.allocate_cluster(2)

    def seal_and_append():
        zone_id, _off, _len = yield from cluster.append_group(b"x" * 1024)
        yield from ssd.finish_zone(zone_id)
        before = cluster.remaining()
        # appends route around the sealed zone instead of faulting
        for _ in range(4):
            yield from cluster.append_group(b"y" * 512)
        return zone_id, before

    target, before = run(env, seal_and_append())
    other = next(z for z in cluster.zone_ids if z != target)
    # the sealed zone contributed nothing; the later appends all landed on
    # the surviving zone
    assert before == ssd.zone(other).remaining + 4 * 512
    assert ssd.zone(target).write_pointer == 1024
