"""Unit and integration tests for the ext4-like filesystem."""

import pytest

from repro.errors import FileExistsInFsError, FileNotFoundInFsError
from repro.host import Filesystem, FsCostModel, PageCache, ThreadCtx
from repro.nvme import NvmeController, QueuePair
from repro.sim import CpuPool, Environment
from repro.ssd import ConventionalSsd, SsdGeometry
from repro.units import KiB, MiB


def make_fs(env, cache_bytes=4 * MiB, costs=None, zone_size=MiB, n_zones=32):
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(
            n_channels=2, n_zones=n_zones, zone_size=zone_size, pages_per_block=32
        ),
    )
    qp = QueuePair(env, NvmeController(env, ssd), depth=32)
    fs = Filesystem(
        env, qp, PageCache(cache_bytes), costs=costs, journal_pages=16
    )
    cpu = CpuPool(env, n_cores=2)
    ctx = ThreadCtx(cpu=cpu, core=0)
    return fs, ctx, ssd


def run(env, gen):
    return env.run(env.process(gen))


def test_create_write_read_roundtrip():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"hello world", ctx)
        data = yield from fs.read("f", 0, 11, ctx)
        return data

    assert run(env, proc()) == b"hello world"


def test_create_exclusive():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.create("f", ctx)

    env.process(proc())
    with pytest.raises(FileExistsInFsError):
        env.run()


def test_create_non_exclusive_idempotent():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.create("f", ctx, exclusive=False)
        return fs.exists("f")

    assert run(env, proc())


def test_missing_file_errors():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def read_missing():
        yield from fs.read("nope", 0, 10, ctx)

    env.process(read_missing())
    with pytest.raises(FileNotFoundInFsError):
        env.run()
    with pytest.raises(FileNotFoundInFsError):
        fs.file_size("nope")


def test_appends_grow_file():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("log", ctx)
        pos = 0
        for chunk in (b"aaa", b"bbbb", b"cc"):
            yield from fs.write("log", pos, chunk, ctx)
            pos += len(chunk)
        data = yield from fs.read("log", 0, pos, ctx)
        return fs.file_size("log"), data

    size, data = run(env, proc())
    assert size == 9
    assert data == b"aaabbbbcc"


def test_read_clips_at_eof():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"short", ctx)
        data = yield from fs.read("f", 3, 100, ctx)
        return data

    assert run(env, proc()) == b"rt"


def test_overwrite_within_file():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"x" * 10000, ctx)
        yield from fs.write("f", 5000, b"Y" * 10, ctx)
        data = yield from fs.read("f", 4998, 14, ctx)
        return data

    assert run(env, proc()) == b"xx" + b"Y" * 10 + b"xx"


def test_write_spanning_many_pages_roundtrips():
    env = Environment()
    fs, ctx, _ = make_fs(env)
    payload = bytes(i % 251 for i in range(40_000))

    def proc():
        yield from fs.create("big", ctx)
        yield from fs.write("big", 100, payload, ctx)
        data = yield from fs.read("big", 100, len(payload), ctx)
        return data

    assert run(env, proc()) == payload


def test_fsync_flushes_dirty_pages_to_device():
    env = Environment()
    fs, ctx, ssd = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"d" * 8192, ctx)
        before = ssd.stats.bytes_written
        yield from fs.fsync("f", ctx)
        after = ssd.stats.bytes_written
        return after - before

    flushed = run(env, proc())
    assert flushed >= 8192  # data + journal


def test_read_survives_cache_drop():
    env = Environment()
    fs, ctx, _ = make_fs(env)
    payload = b"p" * 12000

    def write_phase():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, payload, ctx)
        yield from fs.fsync("f", ctx)

    run(env, write_phase())
    fs.drop_caches()

    def read_phase():
        data = yield from fs.read("f", 0, len(payload), ctx)
        return data

    assert run(env, read_phase()) == payload


def test_readahead_inflates_device_reads():
    env = Environment()
    costs = FsCostModel(readahead_bytes=128 * KiB)
    fs, ctx, ssd = make_fs(env, costs=costs)
    payload = b"r" * (256 * KiB)

    def write_phase():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, payload, ctx)
        yield from fs.fsync("f", ctx)

    run(env, write_phase())
    fs.drop_caches()
    before = ssd.stats.bytes_read

    def read_phase():
        yield from fs.read("f", 0, 4096, ctx)

    run(env, read_phase())
    inflated = ssd.stats.bytes_read - before
    assert inflated >= 128 * KiB  # one 4K read pulled a full readahead window


def test_cached_read_is_free_of_device_io():
    env = Environment()
    fs, ctx, ssd = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"c" * 4096, ctx)
        before = ssd.stats.bytes_read
        yield from fs.read("f", 0, 4096, ctx)  # hits the dirty page in cache
        return ssd.stats.bytes_read - before

    assert run(env, proc()) == 0


def test_delete_frees_space_and_name():
    env = Environment()
    fs, ctx, ssd = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        yield from fs.write("f", 0, b"x" * 8192, ctx)
        yield from fs.fsync("f", ctx)
        yield from fs.delete("f", ctx)
        return fs.exists("f")

    assert not run(env, proc())

    def recreate():
        yield from fs.create("f", ctx)
        data = yield from fs.read("f", 0, 10, ctx)
        return data

    assert run(env, recreate()) == b""


def test_rename_moves_content():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("a", ctx)
        yield from fs.write("a", 0, b"content", ctx)
        yield from fs.rename("a", "b", ctx)
        data = yield from fs.read("b", 0, 7, ctx)
        return fs.exists("a"), data

    gone, data = run(env, proc())
    assert not gone
    assert data == b"content"


def test_rename_replaces_target():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("a", ctx)
        yield from fs.write("a", 0, b"AAA", ctx)
        yield from fs.create("b", ctx)
        yield from fs.write("b", 0, b"BBB", ctx)
        yield from fs.rename("a", "b", ctx)
        data = yield from fs.read("b", 0, 3, ctx)
        return data

    assert run(env, proc()) == b"AAA"


def test_writeback_threshold_throttles_writer():
    env = Environment()
    costs = FsCostModel(writeback_threshold=64 * KiB)
    fs, ctx, ssd = make_fs(env, costs=costs)

    def proc():
        yield from fs.create("f", ctx)
        for i in range(64):  # 256 KiB total, crosses the 64 KiB threshold
            yield from fs.write("f", i * 4096, b"w" * 4096, ctx)

    run(env, proc())
    # Device saw writes without any fsync.
    assert ssd.stats.bytes_written >= 128 * KiB


def test_list_files():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        for name in ("b", "a", "c"):
            yield from fs.create(name, ctx)
        return fs.list_files()

    assert run(env, proc()) == ["a", "b", "c"]


def test_syscall_costs_advance_clock():
    env = Environment()
    fs, ctx, _ = make_fs(env)

    def proc():
        yield from fs.create("f", ctx)
        t0 = env.now
        yield from fs.write("f", 0, b"x" * 4096, ctx)
        return env.now - t0

    assert run(env, proc()) > 0
