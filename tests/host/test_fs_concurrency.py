"""Concurrency tests for the filesystem: parallel writers and readers."""

import pytest

from tests.lsm.conftest import LsmTestbed, small_options


def test_parallel_writers_to_distinct_files():
    tb = LsmTestbed(options=small_options())
    payloads = {f"file-{i}": bytes([i]) * 20_000 for i in range(6)}

    def writer(name, payload, core):
        ctx = tb.fg.pinned(core)
        yield from tb.fs.create(name, ctx)
        for start in range(0, len(payload), 4096):
            yield from tb.fs.write(name, start, payload[start : start + 4096], ctx)
        yield from tb.fs.fsync(name, ctx)

    procs = [
        tb.env.process(writer(name, payload, i % 4))
        for i, (name, payload) in enumerate(payloads.items())
    ]
    tb.env.run()

    def verify():
        for name, payload in payloads.items():
            got = yield from tb.fs.read(name, 0, len(payload), tb.fg)
            assert got == payload, name

    tb.run(verify())


def test_interleaved_reader_and_writer_distinct_files():
    tb = LsmTestbed(options=small_options())

    def setup():
        yield from tb.fs.create("static", tb.fg)
        yield from tb.fs.write("static", 0, b"s" * 40_000, tb.fg)
        yield from tb.fs.fsync("static", tb.fg)
        yield from tb.fs.create("growing", tb.fg)

    tb.run(setup())
    tb.fs.drop_caches()
    read_results = []

    def reader():
        for _ in range(10):
            data = yield from tb.fs.read("static", 0, 40_000, tb.fg.pinned(0))
            read_results.append(data == b"s" * 40_000)

    def writer():
        for i in range(20):
            yield from tb.fs.write(
                "growing", i * 4096, bytes([i]) * 4096, tb.fg.pinned(1)
            )

    tb.env.process(reader())
    tb.env.process(writer())
    tb.env.run()
    assert all(read_results) and len(read_results) == 10

    def verify_growing():
        got = yield from tb.fs.read("growing", 5 * 4096, 4096, tb.fg)
        assert got == bytes([5]) * 4096

    tb.run(verify_growing())


def test_shared_device_contention_slows_both():
    """Two concurrent heavy writers on one device take longer than one."""

    def run(n_writers):
        tb = LsmTestbed(options=small_options())
        payload = b"x" * 200_000

        def writer(i):
            ctx = tb.fg.pinned(i)
            name = f"f{i}"
            yield from tb.fs.create(name, ctx)
            for start in range(0, len(payload), 4096):
                yield from tb.fs.write(name, start, payload[start : start + 4096], ctx)
            yield from tb.fs.fsync(name, ctx)

        t0 = tb.env.now
        for i in range(n_writers):
            tb.env.process(writer(i))
        tb.env.run()
        return tb.env.now - t0

    t1 = run(1)
    t2 = run(2)
    assert t2 > t1  # contention, not magic parallel speedup
    # Buffered writes make t1 mostly CPU; doubling writers roughly doubles
    # device work and serialises journal commits, but stays bounded.
    assert t2 < 5 * t1
