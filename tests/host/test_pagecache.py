"""Unit tests for the LRU page cache."""

import pytest

from repro.errors import FilesystemError
from repro.host import PageCache


def page(fill, size=4096):
    return bytes([fill]) * size


def test_capacity_validation():
    with pytest.raises(FilesystemError):
        PageCache(capacity_bytes=100, page_size=4096)


def test_put_get_roundtrip():
    c = PageCache(capacity_bytes=16 * 4096)
    c.put(1, 0, page(7), dirty=False)
    assert c.get(1, 0) == page(7)
    assert c.hits == 1
    assert c.get(1, 1) is None
    assert c.misses == 1


def test_wrong_page_size_rejected():
    c = PageCache(capacity_bytes=16 * 4096)
    with pytest.raises(FilesystemError):
        c.put(1, 0, b"short", dirty=False)


def test_lru_eviction_order():
    c = PageCache(capacity_bytes=2 * 4096)
    c.put(1, 0, page(0), dirty=False)
    c.put(1, 1, page(1), dirty=False)
    c.get(1, 0)  # touch page 0 so page 1 is LRU
    c.put(1, 2, page(2), dirty=False)
    assert c.get(1, 1) is None  # evicted
    assert c.get(1, 0) == page(0)


def test_eviction_returns_dirty_pages():
    c = PageCache(capacity_bytes=2 * 4096)
    c.put(1, 0, page(0), dirty=True)
    c.put(1, 1, page(1), dirty=False)
    evicted = c.put(1, 2, page(2), dirty=False)
    assert evicted == [(1, 0, page(0))]
    assert c.dirty_bytes == 0


def test_clean_eviction_silent():
    c = PageCache(capacity_bytes=2 * 4096)
    c.put(1, 0, page(0), dirty=False)
    c.put(1, 1, page(1), dirty=False)
    evicted = c.put(1, 2, page(2), dirty=False)
    assert evicted == []


def test_dirty_tracking_and_mark_clean():
    c = PageCache(capacity_bytes=8 * 4096)
    c.put(1, 0, page(0), dirty=True)
    c.put(1, 1, page(1), dirty=True)
    c.put(2, 0, page(2), dirty=True)
    assert c.dirty_bytes == 3 * 4096
    assert c.dirty_pages_of(1) == [(0, page(0)), (1, page(1))]
    c.mark_clean(1, [0, 1])
    assert c.dirty_pages_of(1) == []
    assert c.dirty_bytes == 4096


def test_invalidate_file():
    c = PageCache(capacity_bytes=8 * 4096)
    c.put(1, 0, page(0), dirty=True)
    c.put(2, 0, page(1), dirty=False)
    c.invalidate_file(1)
    assert c.get(1, 0) is None
    assert c.get(2, 0) == page(1)
    assert c.dirty_bytes == 0


def test_drop_clean_keeps_dirty():
    c = PageCache(capacity_bytes=8 * 4096)
    c.put(1, 0, page(0), dirty=True)
    c.put(1, 1, page(1), dirty=False)
    dropped = c.drop_clean()
    assert dropped == 1
    assert c.contains(1, 0)
    assert not c.contains(1, 1)


def test_contains_does_not_perturb_stats():
    c = PageCache(capacity_bytes=8 * 4096)
    c.put(1, 0, page(0), dirty=False)
    c.contains(1, 0)
    c.contains(1, 5)
    assert c.hits == 0 and c.misses == 0


def test_hit_rate():
    c = PageCache(capacity_bytes=8 * 4096)
    assert c.hit_rate() == 0.0
    c.put(1, 0, page(0), dirty=False)
    c.get(1, 0)
    c.get(1, 1)
    assert c.hit_rate() == pytest.approx(0.5)


def test_overwrite_updates_in_place():
    c = PageCache(capacity_bytes=8 * 4096)
    c.put(1, 0, page(0), dirty=False)
    c.put(1, 0, page(9), dirty=True)
    assert c.get(1, 0) == page(9)
    assert c.size_bytes == 4096
