"""Shared fixtures for LSM tests: a small host testbed."""

import pytest

from repro.host import Filesystem, FsCostModel, PageCache, ThreadCtx
from repro.lsm import CompactionMode, Db, DbOptions
from repro.nvme import NvmeController, QueuePair
from repro.sim import CpuPool, Environment
from repro.ssd import ConventionalSsd, SsdGeometry
from repro.units import KiB, MiB


class LsmTestbed:
    """A host with a filesystem, CPU pool and one LSM DB."""

    def __init__(self, options=None, n_cores=4, cache_bytes=8 * MiB):
        self.env = Environment()
        self.ssd = ConventionalSsd(
            self.env,
            geometry=SsdGeometry(
                n_channels=4, n_zones=64, zone_size=4 * MiB, pages_per_block=64
            ),
        )
        self.qp = QueuePair(self.env, NvmeController(self.env, self.ssd), depth=32)
        self.fs = Filesystem(
            self.env, self.qp, PageCache(cache_bytes), journal_pages=64
        )
        self.cpu = CpuPool(self.env, n_cores=n_cores)
        self.fg = ThreadCtx(cpu=self.cpu, core=0)
        self.bg = ThreadCtx(cpu=self.cpu, cores=tuple(range(n_cores)), priority=5)
        self.db = Db(self.env, self.fs, bg_ctx=self.bg, options=options)

    def run(self, gen):
        return self.env.run(self.env.process(gen))


def small_options(**overrides):
    """Options scaled so a few thousand keys exercise flush + compaction."""
    defaults = dict(
        memtable_bytes=64 * KiB,
        l1_target_bytes=256 * KiB,
        target_file_bytes=128 * KiB,
        block_cache_bytes=1 * MiB,
        enable_wal=False,
    )
    defaults.update(overrides)
    return DbOptions(**defaults)


@pytest.fixture
def testbed():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))
    return tb
