"""Unit tests for LSM building blocks: bloom, block, memtable, iterator, cache."""

import pytest

from repro.errors import DbError
from repro.lsm import BlockCache, BloomFilter, LookupState, Memtable
from repro.lsm.block import BlockBuilder, BlockReader
from repro.lsm.iterator import count_merge_comparisons, merge_entries


# ---------------------------------------------------------------- bloom
def test_bloom_no_false_negatives():
    bf = BloomFilter(n_keys=1000, bits_per_key=10)
    keys = [f"key-{i}".encode() for i in range(1000)]
    for k in keys:
        bf.add(k)
    assert all(bf.may_contain(k) for k in keys)


def test_bloom_false_positive_rate_reasonable():
    bf = BloomFilter(n_keys=2000, bits_per_key=10)
    for i in range(2000):
        bf.add(f"present-{i}".encode())
    false_positives = sum(
        bf.may_contain(f"absent-{i}".encode()) for i in range(2000)
    )
    # theoretical ~1%; allow generous slack
    assert false_positives < 2000 * 0.05


def test_bloom_serialization_roundtrip():
    bf = BloomFilter(n_keys=100, bits_per_key=10)
    for i in range(100):
        bf.add(f"k{i}".encode())
    clone = BloomFilter.from_bytes(bf.to_bytes())
    assert clone.n_bits == bf.n_bits
    assert clone.k == bf.k
    assert all(clone.may_contain(f"k{i}".encode()) for i in range(100))


def test_bloom_corrupt_payload_rejected():
    with pytest.raises(DbError):
        BloomFilter.from_bytes(b"short")
    bf = BloomFilter(n_keys=10)
    blob = bf.to_bytes()
    with pytest.raises(DbError):
        BloomFilter.from_bytes(blob[:-1])


def test_bloom_validation():
    with pytest.raises(DbError):
        BloomFilter(n_keys=-1)
    with pytest.raises(DbError):
        BloomFilter(n_keys=10, bits_per_key=0)


# ---------------------------------------------------------------- block
def test_block_roundtrip():
    b = BlockBuilder(target_bytes=4096)
    entries = [(f"k{i:03d}".encode(), f"v{i}".encode()) for i in range(50)]
    for k, v in entries:
        b.add(k, v)
    reader = BlockReader(b.finish())
    assert reader.n_entries == 50
    assert reader.entries() == entries
    for k, v in entries:
        assert reader.get(k) == v
    assert reader.get(b"nope") is None


def test_block_requires_sorted_input():
    b = BlockBuilder(target_bytes=4096)
    b.add(b"b", b"1")
    with pytest.raises(DbError):
        b.add(b"a", b"2")


def test_block_fullness():
    b = BlockBuilder(target_bytes=100)
    assert not b.full
    b.add(b"k" * 40, b"v" * 60)
    assert b.full


def test_block_entries_from():
    b = BlockBuilder(target_bytes=4096)
    for i in range(10):
        b.add(f"k{i}".encode(), b"v")
    reader = BlockReader(b.finish())
    tail = reader.entries_from(b"k7")
    assert [k for k, _ in tail] == [b"k7", b"k8", b"k9"]
    assert reader.entries_from(b"zzz") == []
    assert len(reader.entries_from(b"")) == 10


def test_block_truncated_rejected():
    with pytest.raises(DbError):
        BlockReader(b"xx")


# ---------------------------------------------------------------- memtable
def test_memtable_put_get():
    m = Memtable()
    m.put(b"a", b"1")
    assert m.get(b"a") == (LookupState.FOUND, b"1")
    assert m.get(b"b") == (LookupState.MISSING, None)


def test_memtable_delete_is_tombstone():
    m = Memtable()
    m.put(b"a", b"1")
    m.delete(b"a")
    assert m.get(b"a") == (LookupState.DELETED, None)
    # deleting an unknown key still records a tombstone
    m.delete(b"ghost")
    assert m.get(b"ghost") == (LookupState.DELETED, None)


def test_memtable_overwrite_updates_size_consistently():
    m = Memtable()
    m.put(b"k", b"short")
    size1 = m.approximate_bytes
    m.put(b"k", b"a-much-longer-value")
    size2 = m.approximate_bytes
    assert size2 > size1
    m.put(b"k", b"s")
    assert m.approximate_bytes < size2
    assert len(m) == 1


def test_memtable_sorted_entries():
    m = Memtable()
    for k in (b"c", b"a", b"b"):
        m.put(k, k.upper())
    assert m.sorted_entries() == [(b"a", b"A"), (b"b", b"B"), (b"c", b"C")]


def test_memtable_range_entries():
    m = Memtable()
    for i in range(10):
        m.put(f"k{i}".encode(), b"v")
    got = m.range_entries(b"k3", b"k7")
    assert [k for k, _ in got] == [b"k3", b"k4", b"k5", b"k6"]


# ---------------------------------------------------------------- merge iterator
def test_merge_newest_wins():
    new = [(b"a", b"new"), (b"b", b"nb")]
    old = [(b"a", b"old"), (b"c", b"oc")]
    merged = merge_entries([new, old], drop_tombstones=False)
    assert merged == [(b"a", b"new"), (b"b", b"nb"), (b"c", b"oc")]


def test_merge_tombstone_masks_old_value():
    new = [(b"a", None)]
    old = [(b"a", b"old"), (b"b", b"vb")]
    kept = merge_entries([new, old], drop_tombstones=False)
    assert kept == [(b"a", None), (b"b", b"vb")]
    dropped = merge_entries([new, old], drop_tombstones=True)
    assert dropped == [(b"b", b"vb")]


def test_merge_three_streams():
    s0 = [(b"k1", b"s0")]
    s1 = [(b"k1", b"s1"), (b"k2", b"s1")]
    s2 = [(b"k2", b"s2"), (b"k3", b"s2")]
    merged = merge_entries([s0, s1, s2], drop_tombstones=False)
    assert merged == [(b"k1", b"s0"), (b"k2", b"s1"), (b"k3", b"s2")]


def test_merge_empty_streams():
    assert merge_entries([], drop_tombstones=True) == []
    assert merge_entries([[], []], drop_tombstones=True) == []


def test_merge_comparison_count_scales_with_log_k():
    assert count_merge_comparisons(0, 4) == 0
    assert count_merge_comparisons(100, 1) == 100
    assert count_merge_comparisons(100, 2) > 100
    assert count_merge_comparisons(100, 16) > count_merge_comparisons(100, 2)


# ---------------------------------------------------------------- block cache
class _FakeBlock:
    pass


def test_block_cache_hit_miss():
    c = BlockCache(capacity_bytes=8192)
    blk = _FakeBlock()
    assert c.get(1, 0) is None
    c.put(1, 0, blk, 4096)
    assert c.get(1, 0) is blk
    assert c.hits == 1 and c.misses == 1
    assert c.hit_rate() == pytest.approx(0.5)


def test_block_cache_lru_eviction():
    c = BlockCache(capacity_bytes=8192)
    a, b, d = _FakeBlock(), _FakeBlock(), _FakeBlock()
    c.put(1, 0, a, 4096)
    c.put(1, 4096, b, 4096)
    c.get(1, 0)  # touch a
    c.put(1, 8192, d, 4096)  # evicts b (LRU)
    assert c.get(1, 4096) is None
    assert c.get(1, 0) is a


def test_block_cache_evict_table():
    c = BlockCache(capacity_bytes=65536)
    c.put(1, 0, _FakeBlock(), 4096)
    c.put(2, 0, _FakeBlock(), 4096)
    c.evict_table(1)
    assert c.get(1, 0) is None
    assert c.get(2, 0) is not None
    assert c.size_bytes == 4096


def test_block_cache_validation():
    with pytest.raises(DbError):
        BlockCache(capacity_bytes=100)
