"""Integration tests for the full LSM DB: writes, flushes, compaction, reads."""

import pytest

from repro.errors import DbClosedError
from repro.lsm import CompactionMode

from tests.lsm.conftest import LsmTestbed, small_options


def load_keys(tb, n, prefix="key", value_size=32, batch=100):
    def proc():
        batch_pairs = []
        for i in range(n):
            batch_pairs.append(
                (f"{prefix}-{i:06d}".encode(), bytes([i % 256]) * value_size)
            )
            if len(batch_pairs) == batch:
                yield from tb.db.write_batch(batch_pairs, tb.fg)
                batch_pairs = []
        if batch_pairs:
            yield from tb.db.write_batch(batch_pairs, tb.fg)

    tb.run(proc())


def test_put_get_from_memtable(testbed):
    tb = testbed

    def proc():
        yield from tb.db.put(b"k", b"v", tb.fg)
        value = yield from tb.db.get(b"k", tb.fg)
        return value

    assert tb.run(proc()) == b"v"


def test_get_missing_returns_none(testbed):
    tb = testbed

    def proc():
        return (yield from tb.db.get(b"ghost", tb.fg))

    assert tb.run(proc()) is None


def test_flush_creates_l0_table(testbed):
    tb = testbed
    load_keys(tb, 200)

    def proc():
        yield from tb.db.flush(tb.fg)

    tb.run(proc())
    assert tb.db.versions.l0_count() >= 1 or tb.db.table_count() >= 1


def test_reads_after_flush(testbed):
    tb = testbed
    load_keys(tb, 500)

    def proc():
        yield from tb.db.flush(tb.fg)
        vals = []
        for i in (0, 123, 499):
            v = yield from tb.db.get(f"key-{i:06d}".encode(), tb.fg)
            vals.append(v)
        return vals

    vals = tb.run(proc())
    assert vals[0] == bytes([0]) * 32
    assert vals[1] == bytes([123]) * 32
    assert vals[2] == bytes([499 % 256]) * 32


def test_auto_compaction_reduces_l0(testbed):
    tb = testbed
    # enough data for several memtable flushes -> L0 trigger -> compaction
    load_keys(tb, 4000)

    def proc():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(proc())
    assert tb.db.stats.counter("compactions").value >= 1
    assert tb.db.versions.l0_count() < tb.db.options.l0_compaction_trigger
    # data survived compaction
    def check():
        v = yield from tb.db.get(b"key-003999", tb.fg)
        return v

    assert tb.run(check()) is not None


def test_overwrites_newest_wins_across_levels(testbed):
    tb = testbed

    def proc():
        yield from tb.db.put(b"dup", b"v1", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.put(b"dup", b"v2", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.put(b"dup", b"v3", tb.fg)
        value = yield from tb.db.get(b"dup", tb.fg)
        return value

    assert tb.run(proc()) == b"v3"


def test_delete_masks_flushed_value(testbed):
    tb = testbed

    def proc():
        yield from tb.db.put(b"k", b"v", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.delete(b"k", tb.fg)
        value = yield from tb.db.get(b"k", tb.fg)
        return value

    assert tb.run(proc()) is None


def test_delete_survives_flush_and_compaction(testbed):
    tb = testbed
    load_keys(tb, 1000)

    def proc():
        yield from tb.db.delete(b"key-000500", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()
        gone = yield from tb.db.get(b"key-000500", tb.fg)
        kept = yield from tb.db.get(b"key-000501", tb.fg)
        return gone, kept

    gone, kept = tb.run(proc())
    assert gone is None
    assert kept is not None


def test_scan_merges_memtable_and_tables(testbed):
    tb = testbed

    def proc():
        yield from tb.db.put(b"a1", b"old", tb.fg)
        yield from tb.db.put(b"a2", b"x", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.put(b"a1", b"new", tb.fg)  # memtable overrides table
        yield from tb.db.put(b"a3", b"y", tb.fg)
        got = yield from tb.db.scan(b"a0", b"a9", tb.fg)
        return got

    got = tb.run(proc())
    assert got == [(b"a1", b"new"), (b"a2", b"x"), (b"a3", b"y")]


def test_scan_excludes_tombstones(testbed):
    tb = testbed

    def proc():
        for k in (b"s1", b"s2", b"s3"):
            yield from tb.db.put(k, b"v", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.delete(b"s2", tb.fg)
        got = yield from tb.db.scan(b"s0", b"s9", tb.fg)
        return [k for k, _ in got]

    assert tb.run(proc()) == [b"s1", b"s3"]


def test_deferred_mode_no_background_compaction():
    tb = LsmTestbed(
        options=small_options(compaction_mode=CompactionMode.DEFERRED)
    )
    tb.run(tb.db.open(tb.fg))
    load_keys(tb, 4000)

    def proc():
        yield from tb.db.flush(tb.fg)

    tb.run(proc())
    assert tb.db.stats.counter("compactions").value == 0
    assert tb.db.versions.l0_count() >= tb.db.options.l0_compaction_trigger


def test_deferred_compact_all_single_sorted_run():
    tb = LsmTestbed(
        options=small_options(compaction_mode=CompactionMode.DEFERRED)
    )
    tb.run(tb.db.open(tb.fg))
    load_keys(tb, 3000)

    def proc():
        yield from tb.db.compact_all(tb.fg)

    tb.run(proc())
    assert tb.db.stats.counter("compactions").value == 1
    assert tb.db.versions.l0_count() == 0
    # everything now lives on the bottom level
    sizes = tb.db.level_sizes()
    assert sizes[-1] > 0
    assert all(s == 0 for s in sizes[:-1])

    def check():
        v = yield from tb.db.get(b"key-001234", tb.fg)
        return v

    assert tb.run(check()) is not None


def test_none_mode_never_compacts():
    tb = LsmTestbed(options=small_options(compaction_mode=CompactionMode.NONE))
    tb.run(tb.db.open(tb.fg))
    load_keys(tb, 4000)

    def proc():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.compact_all(tb.fg)  # must be a no-op... for NONE too?

    tb.run(proc())
    # NONE mode still allows an explicit compact_all per our API; the paper's
    # "no compaction" run never calls it, so check the automatic path only.
    assert tb.db.stats.counter("flushes").value >= 2


def test_write_stall_accounting_under_load():
    # Tiny memtable + single slow bg thread forces rotation waits.
    tb = LsmTestbed(
        options=small_options(
            memtable_bytes=16 * 1024,
            max_immutable_memtables=1,
            n_compaction_threads=1,
        ),
        n_cores=1,
    )
    tb.run(tb.db.open(tb.fg))
    load_keys(tb, 3000)

    def proc():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(proc())
    assert tb.db.stats.counter("stall_seconds").value > 0


def test_closed_db_rejects_operations(testbed):
    tb = testbed

    def proc():
        yield from tb.db.close(tb.fg)

    tb.run(proc())

    def use_after_close():
        yield from tb.db.put(b"k", b"v", tb.fg)

    with pytest.raises(DbClosedError):
        tb.run(use_after_close())


def test_wal_written_when_enabled():
    tb = LsmTestbed(options=small_options(enable_wal=True))
    tb.run(tb.db.open(tb.fg))

    def proc():
        yield from tb.db.put(b"k", b"v", tb.fg)

    tb.run(proc())
    wal_files = [f for f in tb.fs.list_files() if "wal" in f]
    assert wal_files
    assert tb.fs.file_size(wal_files[0]) > 0


def test_wal_segments_deleted_after_flush():
    tb = LsmTestbed(options=small_options(enable_wal=True))
    tb.run(tb.db.open(tb.fg))
    load_keys(tb, 2000)

    def proc():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(proc())
    # only the live (current) wal segment remains
    wal_files = [f for f in tb.fs.list_files() if "wal" in f]
    assert len(wal_files) == 1


def test_compaction_write_amplification_measurable(testbed):
    tb = testbed
    before = tb.ssd.stats.bytes_written
    load_keys(tb, 5000, value_size=64)

    def proc():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(proc())
    written = tb.ssd.stats.bytes_written - before
    user_bytes = 5000 * (10 + 64)
    # LSM write amplification: device wrote a multiple of the user data.
    assert written > 1.5 * user_bytes


def test_simulated_time_advances_with_load(testbed):
    tb = testbed
    t0 = tb.env.now
    load_keys(tb, 1000)
    assert tb.env.now > t0
