"""Crash-recovery tests: MANIFEST + WAL replay reconstructs the DB."""

import pytest

from repro.lsm import Db

from tests.lsm.conftest import LsmTestbed, small_options


def crash_and_reopen(tb, options):
    """Abandon the old Db instance (the crash model: no close, workers die
    with the process) and open a fresh one over the same filesystem."""
    db2 = Db(tb.env, tb.fs, bg_ctx=tb.bg, options=options)

    def opener():
        yield from db2.open(tb.fg)

    tb.run(opener())
    return db2


def load(tb, db, n, prefix="key"):
    def proc():
        for i in range(n):
            yield from db.put(
                f"{prefix}-{i:06d}".encode(), bytes([i % 256]) * 24, tb.fg
            )

    tb.run(proc())


def test_recover_flushed_tables_from_manifest():
    options = small_options(enable_wal=False)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 4000)

    def settle():
        yield from tb.db.flush(tb.fg)
        yield from tb.db.wait_for_compaction()

    tb.run(settle())
    layout_before = [len(level) for level in tb.db.versions.levels]

    db2 = crash_and_reopen(tb, options)
    assert [len(level) for level in db2.versions.levels] == layout_before

    def verify():
        for i in (0, 1234, 3999):
            value = yield from db2.get(f"key-{i:06d}".encode(), tb.fg)
            assert value == bytes([i % 256]) * 24
        ghost = yield from db2.get(b"missing", tb.fg)
        assert ghost is None

    tb.run(verify())
    assert db2.stats.counter("recoveries").value == 1


def test_recover_unflushed_writes_from_wal():
    options = small_options(enable_wal=True, memtable_bytes=1 << 20)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 300)  # stays entirely in the memtable (never flushed)

    db2 = crash_and_reopen(tb, options)

    def verify():
        for i in (0, 150, 299):
            value = yield from db2.get(f"key-{i:06d}".encode(), tb.fg)
            assert value == bytes([i % 256]) * 24

    tb.run(verify())
    assert db2.stats.counter("wal_records_replayed").value == 300
    # replayed segments are gone; only the fresh segment remains
    wal_files = [f for f in tb.fs.list_files() if "wal" in f]
    assert len(wal_files) == 1


def test_recover_mixed_flushed_and_wal_state():
    options = small_options(enable_wal=True)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 3000)  # several flushes + a live memtable tail

    db2 = crash_and_reopen(tb, options)

    def verify():
        for i in range(0, 3000, 307):
            value = yield from db2.get(f"key-{i:06d}".encode(), tb.fg)
            assert value == bytes([i % 256]) * 24
        scan = yield from db2.scan(b"key-000100", b"key-000104", tb.fg)
        assert [k for k, _ in scan] == [
            b"key-000100", b"key-000101", b"key-000102", b"key-000103"
        ]

    tb.run(verify())


def test_recover_preserves_deletes():
    options = small_options(enable_wal=True)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 1000)

    def delete_some():
        yield from tb.db.delete(b"key-000500", tb.fg)
        yield from tb.db.flush(tb.fg)
        yield from tb.db.delete(b"key-000501", tb.fg)  # only in the WAL

    tb.run(delete_some())
    db2 = crash_and_reopen(tb, options)

    def verify():
        gone1 = yield from db2.get(b"key-000500", tb.fg)
        gone2 = yield from db2.get(b"key-000501", tb.fg)
        kept = yield from db2.get(b"key-000502", tb.fg)
        return gone1, gone2, kept

    gone1, gone2, kept = tb.run(verify())
    assert gone1 is None
    assert gone2 is None
    assert kept is not None


def test_recovered_db_continues_writing():
    options = small_options(enable_wal=True)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 500)

    db2 = crash_and_reopen(tb, options)
    load(tb, db2, 500, prefix="new")

    def settle_and_verify():
        yield from db2.flush(tb.fg)
        yield from db2.wait_for_compaction()
        old = yield from db2.get(b"key-000400", tb.fg)
        new = yield from db2.get(b"new-000400", tb.fg)
        return old, new

    old, new = tb.run(settle_and_verify())
    assert old == bytes([400 % 256]) * 24
    assert new == bytes([400 % 256]) * 24


def test_double_crash_recovery():
    """Recovery after a crash *during* recovered operation still works."""
    options = small_options(enable_wal=True)
    tb = LsmTestbed(options=options)
    tb.run(tb.db.open(tb.fg))
    load(tb, tb.db, 400)
    db2 = crash_and_reopen(tb, options)
    load(tb, db2, 400, prefix="second")
    db3 = crash_and_reopen(tb, options)

    def verify():
        a = yield from db3.get(b"key-000123", tb.fg)
        b = yield from db3.get(b"second-000123", tb.fg)
        return a, b

    a, b = tb.run(verify())
    assert a == bytes([123]) * 24
    assert b == bytes([123]) * 24


def test_fresh_open_is_not_a_recovery():
    tb = LsmTestbed(options=small_options())
    tb.run(tb.db.open(tb.fg))
    assert tb.db.stats.counter("recoveries").value == 0
