"""Unit tests for SSTable build/read over the simulated filesystem."""

import pytest

from repro.errors import DbError
from repro.lsm import LookupState, TableBuilder, TableReader
from repro.lsm.sstable import decode_value, encode_value

from tests.lsm.conftest import LsmTestbed, small_options


def build_table(tb, entries, table_id=1, path="t1.sst"):
    def proc():
        builder = TableBuilder(
            tb.fs, path, table_id, tb.db.options, expected_keys=len(entries)
        )
        for k, v in entries:
            yield from builder.add(k, v, tb.fg)
        meta = yield from builder.finish(tb.fg)
        return meta

    return tb.run(proc())


def test_encode_decode_value():
    assert decode_value(encode_value(b"v")) == (False, b"v")
    assert decode_value(encode_value(None)) == (True, None)
    assert decode_value(encode_value(b"")) == (False, b"")


def test_table_roundtrip_point_lookups():
    tb = LsmTestbed(options=small_options())
    entries = [(f"key-{i:05d}".encode(), f"val-{i}".encode()) for i in range(500)]
    meta = build_table(tb, entries)
    assert meta.n_entries == 500
    assert meta.smallest == b"key-00000"
    assert meta.largest == b"key-00499"
    reader = TableReader(tb.fs, meta, tb.db.options)

    def lookups():
        hits = []
        for k, v in entries[::50]:
            state, value = yield from reader.get(k, tb.fg)
            hits.append((state, value == v))
        missing_state, _ = yield from reader.get(b"zzz", tb.fg)
        return hits, missing_state

    hits, missing_state = tb.run(lookups())
    assert all(state == LookupState.FOUND and ok for state, ok in hits)
    assert missing_state == LookupState.MISSING


def test_table_tombstones_roundtrip():
    tb = LsmTestbed(options=small_options())
    entries = [(b"a", b"1"), (b"b", None), (b"c", b"3")]
    meta = build_table(tb, entries)
    reader = TableReader(tb.fs, meta, tb.db.options)

    def proc():
        state, _ = yield from reader.get(b"b", tb.fg)
        return state

    assert tb.run(proc()) == LookupState.DELETED


def test_table_scan():
    tb = LsmTestbed(options=small_options())
    entries = [(f"k{i:03d}".encode(), str(i).encode()) for i in range(100)]
    meta = build_table(tb, entries)
    reader = TableReader(tb.fs, meta, tb.db.options)

    def proc():
        got = yield from reader.scan(b"k010", b"k015", tb.fg)
        return got

    got = tb.run(proc())
    assert [k for k, _ in got] == [b"k010", b"k011", b"k012", b"k013", b"k014"]


def test_table_all_entries():
    tb = LsmTestbed(options=small_options())
    entries = [(f"k{i:03d}".encode(), b"v") for i in range(300)]
    meta = build_table(tb, entries)
    reader = TableReader(tb.fs, meta, tb.db.options)

    def proc():
        got = yield from reader.all_entries(tb.fg)
        return got

    assert tb.run(proc()) == entries


def test_table_rejects_unsorted():
    tb = LsmTestbed(options=small_options())

    def proc():
        builder = TableBuilder(tb.fs, "bad.sst", 9, tb.db.options, expected_keys=2)
        yield from builder.add(b"b", b"1", tb.fg)
        yield from builder.add(b"a", b"2", tb.fg)

    with pytest.raises(DbError):
        tb.run(proc())


def test_table_rejects_duplicate_keys():
    tb = LsmTestbed(options=small_options())

    def proc():
        builder = TableBuilder(tb.fs, "dup.sst", 9, tb.db.options, expected_keys=2)
        yield from builder.add(b"a", b"1", tb.fg)
        yield from builder.add(b"a", b"2", tb.fg)

    with pytest.raises(DbError):
        tb.run(proc())


def test_empty_table_rejected():
    tb = LsmTestbed(options=small_options())

    def proc():
        builder = TableBuilder(tb.fs, "e.sst", 9, tb.db.options, expected_keys=1)
        yield from builder.finish(tb.fg)

    with pytest.raises(DbError):
        tb.run(proc())


def test_meta_overlap_predicates():
    tb = LsmTestbed(options=small_options())
    meta = build_table(tb, [(b"d", b"1"), (b"m", b"2")])
    assert meta.overlaps(b"a", b"e")
    assert meta.overlaps(b"m", b"z")
    assert not meta.overlaps(b"n", b"z")
    assert not meta.overlaps(b"a", b"d")  # hi is exclusive
    assert meta.contains_key(b"d")
    assert meta.contains_key(b"m")
    assert not meta.contains_key(b"z")


def test_bloom_avoids_block_reads_for_missing_keys():
    tb = LsmTestbed(options=small_options())
    entries = [(f"k{i:04d}".encode(), b"v" * 64) for i in range(1000)]
    meta = build_table(tb, entries)
    reader = TableReader(tb.fs, meta, tb.db.options)

    def warm():
        # load index/bloom once
        state, _ = yield from reader.get(b"k0000", tb.fg)
        return state

    tb.run(warm())
    before = tb.ssd.stats.bytes_read

    def misses():
        n_io_free = 0
        for i in range(200):
            key = f"absent-{i}".encode()
            pre = tb.ssd.stats.bytes_read
            state, _ = yield from reader.get(key, tb.fg)
            assert state == LookupState.MISSING
            if tb.ssd.stats.bytes_read == pre:
                n_io_free += 1
        return n_io_free

    n_io_free = tb.run(misses())
    # The bloom filter must have short-circuited the vast majority.
    assert n_io_free >= 190
