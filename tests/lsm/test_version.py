"""Unit tests for the version set: level bookkeeping and compaction picking."""

import pytest

from repro.lsm import DbOptions, TableMeta, VersionSet
from repro.lsm.options import CompactionMode
from repro.units import KiB, MiB


def options(**kw):
    defaults = dict(
        memtable_bytes=64 * KiB,
        l1_target_bytes=256 * KiB,
        target_file_bytes=128 * KiB,
        enable_wal=False,
    )
    defaults.update(kw)
    return DbOptions(**defaults)


def meta(table_id, smallest, largest, nbytes=100 * KiB, seq=0):
    return TableMeta(
        path=f"t{table_id}.sst",
        table_id=table_id,
        smallest=smallest,
        largest=largest,
        n_entries=100,
        file_bytes=nbytes,
        l0_seq=seq,
    )


def test_add_l0_orders_by_seq_not_arrival():
    vs = VersionSet(options())
    vs.add_l0(meta(1, b"a", b"z", seq=2))
    vs.add_l0(meta(2, b"a", b"z", seq=5))  # newer memtable, later arrival
    vs.add_l0(meta(3, b"a", b"z", seq=3))
    assert [t.table_id for t in vs.levels[0]] == [2, 3, 1]


def test_l0_score_counts_files():
    vs = VersionSet(options(l0_compaction_trigger=4))
    for i in range(3):
        vs.add_l0(meta(i, b"a", b"z", seq=i))
    assert vs.compaction_score(0) == pytest.approx(0.75)
    assert not vs.compaction_needed()
    vs.add_l0(meta(9, b"a", b"z", seq=9))
    assert vs.compaction_needed()


def test_deep_level_score_is_size_based():
    opts = options(l1_target_bytes=256 * KiB)
    vs = VersionSet(opts)
    vs.levels[1] = [meta(1, b"a", b"m", nbytes=200 * KiB)]
    assert vs.compaction_score(1) == pytest.approx(200 / 256)
    vs.levels[1].append(meta(2, b"n", b"z", nbytes=200 * KiB))
    assert vs.compaction_score(1) > 1.0


def test_pick_compaction_l0_takes_all_files_and_overlaps():
    vs = VersionSet(options(l0_compaction_trigger=2))
    vs.add_l0(meta(1, b"a", b"m", seq=1))
    vs.add_l0(meta(2, b"k", b"z", seq=2))
    vs.levels[1] = [
        meta(3, b"a", b"c", nbytes=20 * KiB),
        meta(4, b"p", b"q", nbytes=20 * KiB),
        meta(5, b"zz", b"zzz", nbytes=20 * KiB),  # outside [a, z]
    ]
    task = vs.pick_compaction()
    assert task is not None
    assert {t.table_id for t in task.inputs} == {1, 2}
    assert {t.table_id for t in task.next_level_inputs} == {3, 4}
    assert task.output_level == 1


def test_pick_compaction_reserves_inputs():
    vs = VersionSet(options(l0_compaction_trigger=1))
    vs.add_l0(meta(1, b"a", b"z", seq=1))
    task1 = vs.pick_compaction()
    assert task1 is not None
    # same tables cannot be picked twice
    assert vs.pick_compaction() is None
    vs.release_task(task1)
    assert vs.pick_compaction() is not None


def test_to_bottom_detection():
    vs = VersionSet(options(l0_compaction_trigger=1))
    vs.add_l0(meta(1, b"a", b"z", seq=1))
    task = vs.pick_compaction()
    assert task.to_bottom  # nothing deeper than L1
    vs.release_task(task)
    vs.levels[3] = [meta(9, b"a", b"b")]
    task = vs.pick_compaction()
    assert not task.to_bottom  # L3 holds data below the output level


def test_install_compaction_swaps_tables():
    vs = VersionSet(options(l0_compaction_trigger=1))
    vs.add_l0(meta(1, b"a", b"m", seq=1))
    vs.levels[1] = [meta(2, b"a", b"z")]
    task = vs.pick_compaction()
    outputs = [meta(10, b"a", b"m"), meta(11, b"n", b"z")]
    vs.install_compaction(task, outputs, output_level=1)
    assert vs.levels[0] == []
    assert [t.table_id for t in vs.levels[1]] == [10, 11]
    # inputs are un-reserved after install
    assert vs.pick_compaction() is None or True


def test_install_keeps_l1_sorted_by_key():
    vs = VersionSet(options(l0_compaction_trigger=1))
    vs.add_l0(meta(1, b"m", b"p", seq=1))
    task = vs.pick_compaction()
    vs.levels[1] = [meta(5, b"a", b"c"), meta(6, b"x", b"z")]
    vs.install_compaction(task, [meta(10, b"m", b"p")], output_level=1)
    assert [t.smallest for t in vs.levels[1]] == [b"a", b"m", b"x"]


def test_tables_for_key_probes_newest_first():
    vs = VersionSet(options())
    vs.add_l0(meta(1, b"a", b"z", seq=1))
    vs.add_l0(meta(2, b"a", b"z", seq=2))
    vs.levels[1] = [meta(3, b"a", b"m"), meta(4, b"n", b"z")]
    probe = vs.tables_for_key(b"c")
    assert [t.table_id for t in probe] == [2, 1, 3]
    probe = vs.tables_for_key(b"q")
    assert [t.table_id for t in probe] == [2, 1, 4]


def test_tables_for_key_skips_non_containing_levels():
    vs = VersionSet(options())
    vs.levels[1] = [meta(3, b"a", b"c")]
    assert vs.tables_for_key(b"zz") == []


def test_tables_overlapping_range():
    vs = VersionSet(options())
    vs.levels[1] = [meta(1, b"a", b"f"), meta(2, b"g", b"m"), meta(3, b"n", b"z")]
    overlap = vs.tables_overlapping(b"e", b"h")
    assert [t.table_id for t in overlap] == [1, 2]


def test_pick_full_compaction_collects_everything():
    vs = VersionSet(options())
    vs.add_l0(meta(1, b"a", b"z", seq=1))
    vs.levels[2] = [meta(2, b"a", b"m")]
    vs.levels[5] = [meta(3, b"n", b"z")]
    task = vs.pick_full_compaction()
    assert task is not None
    assert {t.table_id for t in task.all_inputs} == {1, 2, 3}
    assert task.to_bottom
    assert task.output_level == len(vs.levels) - 1


def test_pick_full_compaction_empty_and_already_compacted():
    vs = VersionSet(options())
    assert vs.pick_full_compaction() is None
    vs.levels[-1] = [meta(1, b"a", b"z")]
    assert vs.pick_full_compaction() is None  # single bottom run already


def test_counters():
    vs = VersionSet(options())
    vs.add_l0(meta(1, b"a", b"z", nbytes=10_000, seq=1))
    vs.levels[2] = [meta(2, b"a", b"m", nbytes=20_000)]
    assert vs.n_tables() == 2
    assert vs.l0_count() == 1
    assert vs.level_bytes(0) == 10_000
    assert vs.level_bytes(2) == 20_000
    assert vs.total_entries() == 200
