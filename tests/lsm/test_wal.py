"""Tests for the write-ahead log: framing, sync mode, replay."""

import pytest

from repro.lsm.options import LsmCostModel
from repro.lsm.wal import WriteAheadLog

from tests.lsm.conftest import LsmTestbed, small_options


def make_wal(tb, sync=False):
    return WriteAheadLog(tb.fs, "wal-test.log", LsmCostModel(), sync=sync)


def test_wal_append_and_replay():
    tb = LsmTestbed(options=small_options())
    wal = make_wal(tb)
    batches = [
        [(b"k1", b"v1"), (b"k2", b"v2")],
        [(b"k3", None)],  # tombstone
        [(b"k4", b""), (b"k5", b"x" * 100)],
    ]

    def proc():
        yield from wal.open(tb.fg)
        for batch in batches:
            yield from wal.append(batch, tb.fg)
        blob = yield from tb.fs.read("wal-test.log", 0, 10**6, tb.fg)
        return blob

    blob = tb.run(proc())
    assert wal.records == 3
    replayed = WriteAheadLog.replay(blob)
    assert replayed == [pair for batch in batches for pair in batch]


def test_wal_sync_mode_forces_device_writes():
    tb = LsmTestbed(options=small_options())
    wal = make_wal(tb, sync=True)

    def proc():
        yield from wal.open(tb.fg)
        before = tb.ssd.stats.bytes_written
        yield from wal.append([(b"durable", b"yes")], tb.fg)
        return tb.ssd.stats.bytes_written - before

    flushed = tb.run(proc())
    assert flushed > 0  # fsync pushed the record to the device


def test_wal_buffered_mode_defers_device_writes():
    tb = LsmTestbed(options=small_options())
    wal = make_wal(tb, sync=False)

    def proc():
        yield from wal.open(tb.fg)
        before = tb.ssd.stats.bytes_written
        yield from wal.append([(b"buffered", b"yes")], tb.fg)
        return tb.ssd.stats.bytes_written - before

    assert tb.run(proc()) == 0  # still in the page cache


def test_wal_delete_removes_segment():
    tb = LsmTestbed(options=small_options())
    wal = make_wal(tb)

    def proc():
        yield from wal.open(tb.fg)
        yield from wal.append([(b"k", b"v")], tb.fg)
        yield from wal.delete(tb.fg)
        return tb.fs.exists("wal-test.log")

    assert not tb.run(proc())

    # deleting twice is harmless
    def again():
        yield from wal.delete(tb.fg)

    tb.run(again())


def test_wal_recovery_equivalence_with_db_state():
    """Replaying the live WAL segments reconstructs the unflushed writes."""
    tb = LsmTestbed(options=small_options(enable_wal=True, memtable_bytes=1 << 20))
    tb.run(tb.db.open(tb.fg))
    pairs = [(f"r-{i:04d}".encode(), bytes([i % 256]) * 16) for i in range(100)]

    def write():
        yield from tb.db.write_batch(pairs, tb.fg)
        yield from tb.db.delete(b"r-0007", tb.fg)

    tb.run(write())
    wal_files = [f for f in tb.fs.list_files() if "wal" in f]
    assert len(wal_files) == 1

    def read_wal():
        blob = yield from tb.fs.read(wal_files[0], 0, 10**7, tb.fg)
        return blob

    replayed = WriteAheadLog.replay(tb.run(read_wal()))
    model = {}
    for key, value in replayed:
        if value is None:
            model.pop(key, None)
        else:
            model[key] = value
    expected = dict(pairs)
    expected.pop(b"r-0007")
    assert model == expected
