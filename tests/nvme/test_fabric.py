"""Tests for NVMe-oF remote access to a KV-CSD."""

import numpy as np
import pytest

from repro.core import KvCsdClient, KvCsdDevice
from repro.errors import SimulationError
from repro.host import ThreadCtx
from repro.nvme.fabric import FABRIC_25GBE, FABRIC_100GBE, NvmeOfLink
from repro.nvme.transport import PcieLink
from repro.sim import CpuPool, Environment
from repro.soc import SocBoard
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import MiB


def make_remote_testbed(env, link):
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=4, n_zones=32, zone_size=4 * MiB))
    board = SocBoard(env, ssd)
    device = KvCsdDevice(board, rng=np.random.default_rng(0))
    client = KvCsdClient(device, link)
    cpu = CpuPool(env, 4)
    return client, ThreadCtx(cpu=cpu, core=0)


def run_workflow(env, client, ctx, n=500):
    pairs = [(f"k-{i:06d}".encode(), bytes([i % 256]) * 32) for i in range(n)]

    def proc():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        yield from client.bulk_put("ks", pairs, ctx)
        yield from client.compact("ks", ctx)
        yield from client.wait_for_device("ks", ctx)
        value = yield from client.get("ks", pairs[123][0], ctx)
        return value

    value = env.run(env.process(proc()))
    assert value == pairs[123][1]
    return env.now


def test_client_works_over_fabric():
    env = Environment()
    client, ctx = make_remote_testbed(env, FABRIC_100GBE(env))
    run_workflow(env, client, ctx)


def test_fabric_slower_than_local_pcie():
    env_local = Environment()
    client, ctx = make_remote_testbed(env_local, PcieLink(env_local, lanes=16))
    t_local = run_workflow(env_local, client, ctx)

    env_remote = Environment()
    client, ctx = make_remote_testbed(env_remote, FABRIC_100GBE(env_remote))
    t_remote = run_workflow(env_remote, client, ctx)
    assert t_remote > t_local


def test_slower_fabric_is_slower():
    env_a = Environment()
    client, ctx = make_remote_testbed(env_a, FABRIC_100GBE(env_a))
    t_fast = run_workflow(env_a, client, ctx)

    env_b = Environment()
    client, ctx = make_remote_testbed(env_b, FABRIC_25GBE(env_b))
    t_slow = run_workflow(env_b, client, ctx)
    assert t_slow > t_fast


def test_fabric_transfer_accounting():
    env = Environment()
    link = NvmeOfLink(env)

    def proc():
        yield from link.send(1000)
        yield from link.receive(500)

    env.run(env.process(proc()))
    assert link.bytes_tx == 1000
    assert link.bytes_rx == 500
    assert link.total_bytes == 1500


def test_fabric_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        NvmeOfLink(env, bandwidth=0)
    link = NvmeOfLink(env)

    def proc():
        yield from link.send(-1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_fabric_full_duplex():
    env = Environment()
    link = NvmeOfLink(env)
    done = []

    def tx():
        yield from link.send(MiB)
        done.append(env.now)

    def rx():
        yield from link.receive(MiB)
        done.append(env.now)

    env.process(tx())
    env.process(rx())
    env.run()
    assert done[0] == pytest.approx(done[1])
