"""Unit tests for NVMe queues, controller dispatch, and the PCIe model."""

import pytest

from repro.errors import NvmeError, SimulationError
from repro.nvme import (
    NvmeController,
    PcieLink,
    QueuePair,
    ReadCmd,
    TrimCmd,
    WriteCmd,
    ZoneAppendCmd,
    ZoneReadCmd,
    ZoneResetCmd,
)
from repro.sim import Environment
from repro.ssd import ConventionalSsd, SsdGeometry, ZnsSsd
from repro.units import MiB


def zns_setup(env):
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ctrl = NvmeController(env, ssd)
    return ssd, ctrl, QueuePair(env, ctrl, depth=4)


def conv_setup(env):
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(n_channels=2, n_zones=8, zone_size=MiB, pages_per_block=32),
    )
    ctrl = NvmeController(env, ssd)
    return ssd, ctrl, QueuePair(env, ctrl, depth=4)


def run(env, gen):
    return env.run(env.process(gen))


def test_zone_append_and_read_via_queue():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        c1 = yield from qp.submit(ZoneAppendCmd(zone_id=0, data=b"hello"))
        c2 = yield from qp.submit(ZoneReadCmd(zone_id=0, offset=c1.value, length=5))
        return c2.value

    assert run(env, proc()) == b"hello"
    assert qp.submitted == 2
    assert qp.completed == 2


def test_block_write_read_via_queue():
    env = Environment()
    _, _, qp = conv_setup(env)

    def proc():
        yield from qp.submit(WriteCmd(offset=0, data=b"a" * 4096))
        c = yield from qp.submit(ReadCmd(offset=0, length=4096))
        return c.value

    assert run(env, proc()) == b"a" * 4096


def test_trim_via_queue():
    env = Environment()
    _, _, qp = conv_setup(env)

    def proc():
        yield from qp.submit(WriteCmd(offset=0, data=b"a" * 4096))
        yield from qp.submit(TrimCmd(offset=0, length=4096))
        c = yield from qp.submit(ReadCmd(offset=0, length=4096))
        return c.value

    assert run(env, proc()) == b"\x00" * 4096


def test_wrong_namespace_command_raises_nvme_error():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        yield from qp.submit(WriteCmd(offset=0, data=b"a" * 4096))

    env.process(proc())
    with pytest.raises(NvmeError):
        env.run()


def test_storage_error_becomes_error_completion():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        # read beyond the write pointer
        yield from qp.submit(ZoneReadCmd(zone_id=0, offset=0, length=10))

    env.process(proc())
    with pytest.raises(NvmeError, match="InvalidAddressError"):
        env.run()


def test_queue_depth_limits_inflight():
    env = Environment()
    _, _, qp = zns_setup(env)
    qp_small = qp
    max_seen = []

    def writer(i):
        yield from qp_small.submit(ZoneAppendCmd(zone_id=i % 4, data=b"x" * 4096))
        max_seen.append(qp_small.inflight)

    for i in range(10):
        env.process(writer(i))
    env.run()
    assert qp.submitted == 10
    # inflight never exceeded depth
    assert all(v <= qp.depth for v in max_seen)


def test_post_pipelines_up_to_depth_from_one_process():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        tickets = []
        for i in range(8):
            t = yield from qp.post(ZoneAppendCmd(zone_id=i % 4, data=b"x" * 4096))
            tickets.append(t)
        results = []
        for t in tickets:
            completion = yield from qp.wait(t)
            results.append(completion.ok)
        return results

    assert run(env, proc()) == [True] * 8
    assert qp.submitted == qp.completed == qp.reaped == 8
    assert qp.inflight == 0 and qp.unreaped == 0


def test_post_overlaps_device_time():
    """Two appends to different zones posted back to back finish sooner
    than two synchronous submits (channel parallelism becomes visible)."""

    def elapsed(pipelined):
        env = Environment()
        _, _, qp = zns_setup(env)

        def sync():
            yield from qp.submit(ZoneAppendCmd(zone_id=0, data=b"x" * 4096))
            yield from qp.submit(ZoneAppendCmd(zone_id=1, data=b"x" * 4096))

        def async_():
            t0 = yield from qp.post(ZoneAppendCmd(zone_id=0, data=b"x" * 4096))
            t1 = yield from qp.post(ZoneAppendCmd(zone_id=1, data=b"x" * 4096))
            yield from qp.wait(t0)
            yield from qp.wait(t1)

        run(env, async_() if pipelined else sync())
        return env.now

    assert elapsed(pipelined=True) < elapsed(pipelined=False)


def test_error_completion_does_not_poison_other_tickets():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        good = yield from qp.post(ZoneAppendCmd(zone_id=0, data=b"ok"))
        # read beyond the write pointer of an empty zone -> error CQE
        bad = yield from qp.post(ZoneReadCmd(zone_id=1, offset=0, length=10))
        late = yield from qp.post(ZoneAppendCmd(zone_id=2, data=b"ok"))
        c_good = yield from qp.wait(good)
        with pytest.raises(NvmeError, match="InvalidAddressError"):
            yield from qp.wait(bad)
        c_late = yield from qp.wait(late)
        return c_good.ok, bad.completion.status, c_late.ok

    ok1, bad_status, ok2 = run(env, proc())
    assert ok1 and ok2
    assert bad_status == "InvalidAddressError"
    assert qp.submitted == qp.completed == 3
    assert qp.inflight == 0


def test_try_post_would_block_at_full_depth():
    env = Environment()
    _, _, qp = zns_setup(env)  # depth=4

    def proc():
        tickets = []
        for i in range(4):
            t = yield from qp.try_post(ZoneAppendCmd(zone_id=i, data=b"x" * 4096))
            assert t is not None
            tickets.append(t)
        blocked = yield from qp.try_post(ZoneAppendCmd(zone_id=0, data=b"y"))
        assert blocked is None
        for t in tickets:
            yield from qp.wait(t)
        retry = yield from qp.try_post(ZoneAppendCmd(zone_id=0, data=b"y"))
        assert retry is not None
        yield from qp.wait(retry)

    run(env, proc())
    assert qp.submitted == 5


def test_poll_drains_completions_exactly_once():
    env = Environment()
    _, _, qp = zns_setup(env)

    def proc():
        tickets = []
        for i in range(3):
            tickets.append(
                (yield from qp.post(ZoneAppendCmd(zone_id=i, data=b"x" * 4096)))
            )
        assert qp.poll() == []  # nothing completed at the instant of posting
        for t in tickets:
            yield t.event
        drained = qp.poll()
        assert len(drained) == 3
        assert qp.poll() == []  # exactly once
        return drained

    run(env, proc())
    assert qp.reaped == 3 and qp.unreaped == 0


def test_sync_submit_timing_unchanged_by_async_rewrite():
    """post()+wait() with one command in flight must land on the same
    virtual instants as the pre-async blocking path."""
    env = Environment()
    ssd, ctrl, qp = zns_setup(env)

    def proc():
        yield from qp.submit(ZoneAppendCmd(zone_id=0, data=b"x" * 4096))

    env.process(proc())
    env.run()
    expected = ctrl.firmware_overhead + ssd.latency.write_time(4096)
    assert env.now == pytest.approx(expected)


def test_controller_tracks_concurrent_inflight():
    env = Environment()
    _, ctrl, qp = zns_setup(env)

    def proc():
        tickets = []
        for i in range(4):
            tickets.append(
                (yield from qp.post(ZoneAppendCmd(zone_id=i, data=b"x" * 4096)))
            )
        for t in tickets:
            yield from qp.wait(t)

    run(env, proc())
    assert ctrl.inflight == 0
    assert ctrl.max_inflight > 1  # commands genuinely overlapped


def test_queue_depth_validation():
    env = Environment()
    _, ctrl, _ = zns_setup(env)
    with pytest.raises(SimulationError):
        QueuePair(env, ctrl, depth=0)


def test_firmware_overhead_charged():
    env = Environment()
    ssd, ctrl, qp = zns_setup(env)

    def proc():
        yield from qp.submit(ZoneResetCmd(zone_id=0))

    env.process(proc())
    env.run()
    expected = ctrl.firmware_overhead + ssd.latency.erase_time()
    assert env.now == pytest.approx(expected)
    assert ctrl.commands_executed == 1


def test_pcie_transfer_time():
    env = Environment()
    link = PcieLink(env, lanes=16)

    def proc():
        yield from link.send(16 * MiB)

    run(env, proc())
    expected = link.latency + 16 * MiB / link.bandwidth
    assert env.now == pytest.approx(expected)
    assert link.bytes_tx == 16 * MiB


def test_pcie_full_duplex():
    env = Environment()
    link = PcieLink(env, lanes=4)
    done = []

    def sender():
        yield from link.send(MiB)
        done.append(("tx", env.now))

    def receiver():
        yield from link.receive(MiB)
        done.append(("rx", env.now))

    env.process(sender())
    env.process(receiver())
    env.run()
    # Full duplex: both complete at the same time.
    assert done[0][1] == pytest.approx(done[1][1])
    assert link.total_bytes == 2 * MiB


def test_pcie_same_direction_serializes():
    env = Environment()
    link = PcieLink(env, lanes=4)
    done = []

    def sender(name):
        yield from link.send(MiB)
        done.append(env.now)

    env.process(sender("a"))
    env.process(sender("b"))
    env.run()
    assert done[1] == pytest.approx(2 * done[0])


def test_pcie_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        PcieLink(env, lanes=0)
    link = PcieLink(env)

    def proc():
        yield from link.send(-1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()
