"""Shared fixtures for the observability suite.

``compacted_kv`` runs the reference audited workload fresh per test (it is
cheap at 800 pairs) so corruption tests can mutate device state freely.
``audited_testbed`` is the fixture ISSUE-style integration tests use: any
test that drives it gets an automatic full invariant audit at teardown.
"""

import pytest

from repro.obs.harness import run_audited_workload


@pytest.fixture
def compacted_kv():
    """(testbed, auditor, final_report) after ingest -> compact -> query."""
    return run_audited_workload(seed=0, n_pairs=800, audit_level="off")


@pytest.fixture
def audited_testbed():
    """A journaled testbed whose teardown asserts every invariant holds."""
    from repro.bench import build_kvcsd_testbed
    from repro.units import MiB

    kv = build_kvcsd_testbed(seed=0, block_cache_bytes=4 * MiB)
    _journal, auditor = kv.enable_introspection(audit_level="phase")
    yield kv
    report = auditor.run("teardown")
    assert report.ok, report.format()
