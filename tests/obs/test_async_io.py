"""Observability of the async host I/O path: journal, gauges, attribution.

Every KV command posted to the host queue pair must leave an ``sq.post``
journal event at submission and a ``cq.reap`` event at reaping — with the
queue-wait vs execution latency split — and the queue pair's accounting
must surface as in-flight depth gauges through the MetricsHub.
"""

from repro.bench import build_kvcsd_testbed
from repro.workloads import SyntheticSpec, generate_pairs


def _run_commands(kv, n_pairs=400):
    pairs = generate_pairs(SyntheticSpec(n_pairs=n_pairs, seed=0))

    def workload():
        ctx = kv.thread_ctx(0)
        yield from kv.client.create_keyspace("ks", ctx)
        yield from kv.client.open_keyspace("ks", ctx)
        yield from kv.client.bulk_put("ks", pairs, ctx)
        yield from kv.client.compact("ks", ctx)
        yield from kv.client.wait_for_device("ks", ctx)
        for key, _ in pairs[:5]:
            yield from kv.client.get("ks", key, ctx)

    kv.env.run(kv.env.process(workload()))
    return pairs


def test_every_reap_pairs_with_a_post():
    kv = build_kvcsd_testbed(seed=0)
    kv.enable_introspection(audit_level="off")
    _run_commands(kv)
    posts = kv.env.journal.of_type("sq.post")
    reaps = kv.env.journal.of_type("cq.reap")
    assert posts, "client commands must journal sq.post"
    assert len(posts) == len(reaps)
    posted = {e.fields["cid"]: e for e in posts}
    for reap in reaps:
        post = posted[reap.fields["cid"]]
        assert post.fields["op"] == reap.fields["op"]
        assert post.time <= reap.time
    # submission attribution: the posting thread is recorded
    assert {e.fields["thread"] for e in posts} == {"core0"}


def test_reap_records_queue_wait_vs_execution_split():
    kv = build_kvcsd_testbed(seed=0)
    kv.enable_introspection(audit_level="off")
    _run_commands(kv)
    for reap in kv.env.journal.of_type("cq.reap"):
        assert reap.fields["queued"] >= 0.0
        assert reap.fields["executed"] >= 0.0
        assert reap.fields["status"] == "OK"


def test_queue_wait_appears_under_backpressure():
    from repro.core import KvCsdClient
    from repro.nvme.kv_commands import KvGetCmd

    kv = build_kvcsd_testbed(seed=0)
    pairs = _run_commands(kv)
    small = KvCsdClient(kv.device, kv.link, queue_depth=1)

    def proc():
        ctx = kv.thread_ctx(0)
        commands = [KvGetCmd(keyspace="ks", key=k) for k, _ in pairs[:4]]
        tickets = []
        for command in commands:
            tickets.append((yield from small.qp.post(command, ctx)))
        for ticket in tickets:
            yield from small.qp.wait(ticket, ctx)
        return tickets

    tickets = kv.env.run(kv.env.process(proc()))
    waits = [t.latency_split()[0] for t in tickets]
    execs = [t.latency_split()[1] for t in tickets]
    # The first post only pays pack + capsule DMA; with depth 1 every later
    # post additionally waits for the previous command's slot, so its
    # queue-side latency dominates the baseline.
    assert all(w > 2 * waits[0] for w in waits[1:])
    assert all(e > 0.0 for e in execs)


def test_metrics_hub_exports_queue_pair_gauges():
    kv = build_kvcsd_testbed(seed=0)
    _tracer, hub = kv.enable_tracing()
    _run_commands(kv)
    queues = hub.as_dict()["queues"]
    assert set(queues) >= {"host-kv", "soc-ssd"}
    host = queues["host-kv"]
    assert host["submitted"] == host["completed"] > 0
    assert host["inflight"] == 0
    assert host["reaped"] == host["completed"]
    text = hub.to_prometheus()
    assert 'repro_qp_submitted_total{qp="host-kv"}' in text
    assert 'repro_qp_inflight{qp="host-kv"}' in text
    assert 'repro_qp_depth{qp="soc-ssd"}' in text


def test_sq_cq_spans_in_trace_with_cids():
    kv = build_kvcsd_testbed(seed=0)
    tracer, _hub = kv.enable_tracing()
    _run_commands(kv)
    posts = [s for s in tracer.spans if s.name == "sq.post"]
    reaps = [s for s in tracer.spans if s.name == "cq.reap"]
    assert posts and len(posts) == len(reaps)
    post_cids = {s.args["cid"] for s in posts}
    for reap in reaps:
        assert reap.args["cid"] in post_cids
        assert reap.end == reap.start  # zero-duration marker
