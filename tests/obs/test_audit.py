"""Invariant auditor: every check's pass and fail path, plus zero-cost.

The clean reference workload must pass all eleven invariants; each
corruption test then breaks exactly one structural property and asserts
the report names the right invariant.  Corruption happens on a fresh
per-test device (the ``compacted_kv`` fixture), so mutations never leak.
"""

import pytest

from repro.core.keyspace import KeyspaceState
from repro.errors import SimulationError
from repro.obs import audit as audit_mod
from repro.obs.audit import (
    INVARIANTS,
    InvariantAuditor,
    attach_auditor,
    check_klog_vlog_pointers,
)
from repro.obs.harness import run_audited_workload
from repro.ssd.zone import ZoneState
from repro.units import KiB, MiB


def violated(kv, auditor) -> set[str]:
    """Invariant names flagged by a fresh audit pass."""
    report = auditor.run("test")
    return {v.invariant for v in report.violations}


# -- clean paths ---------------------------------------------------------------
def test_clean_workload_passes_every_invariant(compacted_kv):
    _kv, _auditor, report = compacted_kv
    assert report.ok
    assert report.checks == [name for name, _fn in INVARIANTS]
    assert len(report.checks) == 11


def test_phase_level_audits_cover_flush_and_compaction_boundaries():
    _kv, auditor, report = run_audited_workload(
        seed=0, n_pairs=800, audit_level="phase"
    )
    assert report.ok
    summary = auditor.summary()
    assert summary["failed_runs"] == 0
    boundaries = {r.boundary for r in auditor.reports}
    assert {
        "flush",
        "compact.read_klog",
        "compact.sort",
        "compact.gather",
        "compact.materialize",
        "compact.cleanup",
        "sidx",
        "final",
    } <= boundaries


# -- per-invariant corruption: each names the broken invariant -----------------
def _ingest_only(n_pairs=600):
    """A WRITABLE keyspace with live KLOG/VLOG clusters (small membuf so
    bulk_put flushes several times)."""
    from repro.bench import build_kvcsd_testbed
    from repro.workloads import SyntheticSpec, generate_pairs

    kv = build_kvcsd_testbed(seed=0, membuf_bytes=8 * KiB)
    pairs = generate_pairs(SyntheticSpec(n_pairs=n_pairs, seed=0))

    def workload():
        ctx = kv.thread_ctx(0)
        yield from kv.client.create_keyspace("ks", ctx)
        yield from kv.client.open_keyspace("ks", ctx)
        yield from kv.client.bulk_put("ks", pairs, ctx)

    kv.env.run(kv.env.process(workload()))
    return kv


def test_klog_vlog_pointers_pass_and_fail():
    kv = _ingest_only()
    ks = kv.device.keyspaces["ks"]
    assert ks.klog_clusters  # the ingest actually flushed
    assert check_klog_vlog_pointers(kv.device) == []
    ks.vlog_clusters.clear()  # orphan every KLOG value pointer
    auditor = InvariantAuditor(kv.device)
    assert "klog_vlog_pointers" in violated(kv, auditor)


def test_pidx_block_agreement_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    sketch = kv.device.keyspaces["ks"].pidx_sketch
    sketch.pivots[0], sketch.pivots[1] = sketch.pivots[1], sketch.pivots[0]
    assert "pidx_block_agreement" in violated(kv, auditor)


def test_pidx_value_resolution_fail_on_pair_count(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.keyspaces["ks"].n_pairs += 1
    assert violated(kv, auditor) == {"pidx_value_resolution"}


def test_pidx_value_resolution_fail_without_sketch(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.keyspaces["ks"].pidx_sketch = None
    assert "pidx_value_resolution" in violated(kv, auditor)


def test_sidx_primary_resolution_fail(compacted_kv):
    from dataclasses import replace

    kv, auditor, _report = compacted_kv
    ks = kv.device.keyspaces["ks"]
    config, sketch = ks.sidx["val64"]
    # shift the extraction window: stored skeys no longer re-derive
    ks.sidx["val64"] = (replace(config, value_offset=8), sketch)
    assert violated(kv, auditor) == {"sidx_primary_resolution"}


def test_zone_ownership_disjoint_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    owned = kv.device.keyspaces["ks"].pidx_clusters[0].zone_ids[0]
    kv.device.zone_manager._free.append(owned)
    assert "zone_ownership_disjoint" in violated(kv, auditor)


def test_free_list_zones_empty_fail_on_duplicate(compacted_kv):
    kv, auditor, _report = compacted_kv
    free = kv.device.zone_manager._free
    free.append(free[0])
    assert "free_list_zones_empty" in violated(kv, auditor)


def test_zone_state_write_pointer_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    zone = next(
        z for z in kv.device.ssd.zones if z.state is not ZoneState.EMPTY
    )
    zone.state = ZoneState.EMPTY  # claims rewound while holding data
    assert "zone_state_write_pointer" in violated(kv, auditor)


def test_block_cache_coherence_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    cache = kv.device.block_cache
    assert len(cache) > 0  # the query phase populated it
    pointer = next(iter(cache._entries))
    cache._entries[pointer] = b"\x00" * len(cache._entries[pointer])
    assert "block_cache_coherence" in violated(kv, auditor)


def test_keyspace_job_legality_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.keyspaces["ks"].state = KeyspaceState.EMPTY
    assert "keyspace_job_legality" in violated(kv, auditor)


def test_dram_budget_accounting_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.board.dram.capacity = -1
    assert "dram_budget_accounting" in violated(kv, auditor)


def test_nvme_queue_sanity_fail(compacted_kv):
    kv, auditor, _report = compacted_kv
    qp = kv.device.board.qp
    qp.completed = qp.submitted + 1
    assert "nvme_queue_sanity" in violated(kv, auditor)


# -- auditor mechanics ---------------------------------------------------------
def test_crashed_check_is_reported_as_finding(compacted_kv, monkeypatch):
    kv, auditor, _report = compacted_kv

    def boom(_device):
        raise RuntimeError("check exploded")

    monkeypatch.setattr(audit_mod, "INVARIANTS", [("boom", boom)])
    report = auditor.run("test")
    assert not report.ok
    assert report.violations[0].invariant == "boom"
    assert "check raised RuntimeError" in report.violations[0].detail


def test_violations_carry_journal_tail_and_format(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.keyspaces["ks"].n_pairs += 1
    report = auditor.run("test")
    violation = report.violations[0]
    assert violation.journal_tail  # joined to the journal's recent events
    assert all("seq" in e and "type" in e for e in violation.journal_tail)
    text = report.format()
    assert "FAIL pidx_value_resolution" in text
    assert "journal: #" in text


def test_detail_flood_is_capped(compacted_kv):
    kv, auditor, _report = compacted_kv
    kv.device.keyspaces["ks"].sorted_value_clusters.clear()  # every key dangles
    report = auditor.run("test")
    per_check = [
        v
        for v in report.violations
        if v.invariant == "pidx_value_resolution"
    ]
    assert len(per_check) <= audit_mod.MAX_DETAILS + 1
    assert any("more" in v.detail for v in per_check)


def test_attach_auditor_levels():
    from repro.bench import build_kvcsd_testbed

    kv = build_kvcsd_testbed(seed=0)
    auditor = attach_auditor(kv.device, level="phase")
    assert kv.device.auditor is auditor
    assert attach_auditor(kv.device, level="off") is None
    assert kv.device.auditor is None
    with pytest.raises(SimulationError):
        attach_auditor(kv.device, level="paranoid")


def test_on_boundary_respects_level(compacted_kv):
    kv, _auditor, _report = compacted_kv
    off = InvariantAuditor(kv.device, level="off")
    off.on_boundary("flush")
    assert off.reports == []
    phase = InvariantAuditor(kv.device, level="phase")
    phase.on_boundary("flush")
    assert [r.boundary for r in phase.reports] == ["flush"]


def test_audit_creates_no_simulation_events(compacted_kv):
    kv, auditor, _report = compacted_kv
    before = kv.env.now
    report = auditor.run("test")
    assert kv.env.now == before
    assert report.ok
    runs = kv.env.journal.of_type("audit.run")
    assert runs and runs[-1].fields == {"boundary": "test", "violations": 0}


# -- byte identity -------------------------------------------------------------
def _drive(kv, n_pairs=400):
    from repro.core.sidx import SidxConfig
    from repro.workloads import SyntheticSpec, generate_pairs

    pairs = generate_pairs(SyntheticSpec(n_pairs=n_pairs, seed=0))
    keys = [k for k, _ in pairs[::50]]

    def workload():
        ctx = kv.thread_ctx(0)
        yield from kv.client.create_keyspace("ks", ctx)
        yield from kv.client.open_keyspace("ks", ctx)
        yield from kv.client.bulk_put("ks", pairs, ctx)
        yield from kv.client.compact(
            "ks",
            ctx,
            secondary_indexes=[
                SidxConfig(name="val64", value_offset=0, width=8, dtype="u64")
            ],
        )
        yield from kv.client.wait_for_device("ks", ctx)
        for key in keys[:8]:
            yield from kv.client.get("ks", key, ctx)

    kv.env.run(kv.env.process(workload()))


def test_audited_run_is_byte_identical_to_plain():
    from repro.bench import build_kvcsd_testbed

    plain = build_kvcsd_testbed(seed=0, block_cache_bytes=4 * MiB)
    _drive(plain)
    observed = build_kvcsd_testbed(seed=0, block_cache_bytes=4 * MiB)
    observed.enable_introspection(audit_level="phase")
    _drive(observed)
    assert observed.env.now == plain.env.now
    assert observed.io_snapshot() == plain.io_snapshot()
    assert len(observed.env.journal) > 0
    assert observed.device.auditor.reports  # audits actually ran


def test_audited_testbed_fixture_guards_workload(audited_testbed):
    # the fixture's teardown runs the full registry and asserts it passes
    _drive(audited_testbed, n_pairs=300)
