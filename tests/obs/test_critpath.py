"""Tests for the causal critical-path engine (:mod:`repro.obs.critpath`).

Unit coverage builds span trees and blocked-by edges by hand and checks
the tiling invariant directly; the integration test drives the saturate
workload end-to-end and asserts the acceptance criteria — >= 95% of every
sampled op's latency attributed to typed segments, and the p99 cohort
naming the actual bottleneck (query-queue wait behind the single worker).
"""

from __future__ import annotations

import pytest

from repro.obs.critpath import (
    BlockedEdge,
    CritPathObserver,
    diff_explain,
    explain_report,
    explain_to_folded,
    format_explain,
    install_critpath,
    op_segments,
)
from repro.obs.trace import install_tracer
from repro.sim import Environment


def _tiles(segments, start, end):
    """Assert the tiling invariant: contiguous, anchored, widths sum."""
    assert segments, "op span produced no segments"
    assert segments[0]["start"] == start
    assert segments[-1]["end"] == end
    for prev, cur in zip(segments, segments[1:]):
        assert cur["start"] == prev["end"], "gap or overlap between segments"
    assert sum(s["end"] - s["start"] for s in segments) == pytest.approx(
        end - start
    )


# -- op_segments: the deepest-wins boundary sweep -----------------------------
def test_segments_tile_exactly_with_unattributed_gaps():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        with tracer.span("cmd.get", "command"):
            with tracer.span("cpu.host", "cpu", pool="host"):
                yield env.timeout(1.0)
            yield env.timeout(2.0)  # un-spanned: becomes 'unattributed'
            with tracer.span("nand.read", "flash"):
                yield env.timeout(1.0)

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    segments = op_segments(root, now=env.now)
    _tiles(segments, 0.0, 4.0)
    kinds = [s["kind"] for s in segments]
    assert kinds == ["host_cpu", "unattributed", "flash"]
    assert segments[1]["end"] - segments[1]["start"] == pytest.approx(2.0)


def test_deepest_span_wins_and_stage_time_is_service():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        with tracer.span("cmd.put", "command"):
            with tracer.span("stage.encode", "stage"):
                yield env.timeout(1.0)  # stage-only time -> 'service'
                with tracer.span("cpu.soc", "cpu", pool="soc"):
                    yield env.timeout(2.0)  # deeper span wins

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    segments = op_segments(root, now=env.now)
    _tiles(segments, 0.0, 3.0)
    assert [s["kind"] for s in segments] == ["service", "soc_cpu"]
    assert segments[1]["start"] == pytest.approx(1.0)


def test_job_subtrees_are_pruned_from_command_segments():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        with tracer.span("cmd.compact", "command"):
            with tracer.span("job.compaction", "job"):
                with tracer.span("cpu.soc", "cpu", pool="soc"):
                    yield env.timeout(3.0)

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    segments = op_segments(root, now=env.now)
    _tiles(segments, 0.0, 3.0)
    # The job's soc time belongs to the job's own report entry; from the
    # command's point of view this interval is unattributed.
    assert [s["kind"] for s in segments] == ["unattributed"]


def test_blocked_edges_beat_any_span():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        with tracer.span("cmd.get", "command"):
            with tracer.span("cpu.host", "cpu", pool="host"):
                yield env.timeout(4.0)

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    edge = BlockedEdge(
        "qp.host-kv", "qp_slot", 1.0, 3.0, "cmd.get", root.span_id,
        holders=("cmd.get#7",),
    )
    segments = op_segments(root, edges=[edge], now=env.now)
    _tiles(segments, 0.0, 4.0)
    assert [s["kind"] for s in segments] == [
        "host_cpu", "wait.qp_slot", "host_cpu",
    ]
    blocked = segments[1]
    assert blocked["resource"] == "qp.host-kv"
    assert blocked["holders"] == ("cmd.get#7",)
    assert blocked["start"] == 1.0 and blocked["end"] == 3.0


def test_adjacent_same_identity_segments_merge():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        with tracer.span("cmd.get", "command"):
            with tracer.span("nand.a", "flash"):
                yield env.timeout(1.0)
            with tracer.span("nand.a", "flash"):
                yield env.timeout(1.0)

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    segments = op_segments(root, now=env.now)
    # Same (kind, resource, holders) back to back -> one merged segment.
    assert len(segments) == 1
    _tiles(segments, 0.0, 2.0)


def test_edges_clip_to_the_op_span():
    env = Environment()
    tracer = install_tracer(env)

    def cmd():
        yield env.timeout(1.0)
        with tracer.span("cmd.get", "command"):
            yield env.timeout(2.0)

    env.run(env.process(cmd()))
    root = tracer.command_roots()[0]
    edge = BlockedEdge("q", "queue", 0.0, 10.0, "cmd.get", root.span_id)
    segments = op_segments(root, edges=[edge], now=env.now)
    _tiles(segments, 1.0, 3.0)
    assert [s["kind"] for s in segments] == ["wait.queue"]


# -- the observer's holder registry and wait bracketing -----------------------
def test_holder_registry_acquire_release_and_caps():
    env = Environment()
    observer = install_critpath(env)
    assert env.critpath is observer
    observer.acquire("r", "a")
    observer.acquire("r", "a")
    observer.acquire("r", "b")
    assert observer.holders("r") == ("a", "b")
    observer.release("r", "a")
    assert observer.holders("r") == ("a", "b")  # refcount 2 -> 1
    observer.release("r", "a")
    assert observer.holders("r") == ("b",)
    # Releasing a token never acquired is tolerated, not an error.
    observer.release("r", "never-acquired")
    observer.release("other", "x")
    observer.acquire("r", "c")
    assert observer.holders("r", cap=1) == ("b",)  # insertion order, capped


def test_wait_bracketing_records_edges_with_start_snapshot():
    env = Environment()
    tracer = install_tracer(env)
    observer = install_critpath(env, tracer=tracer)
    holder_done = []

    def holder():
        with tracer.span("cmd.holder", "command"):
            observer.acquire("res", observer.token())
            yield env.timeout(2.0)
            observer.release("res", observer.token())
            holder_done.append(True)

    def waiter():
        with tracer.span("cmd.waiter", "command"):
            begun = observer.wait_begin("res")
            yield env.timeout(1.5)  # stand-in for the blocked yield
            observer.wait_end("res", "queue", begun)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert holder_done
    assert len(observer.edges) == 1
    edge = observer.edges[0]
    assert edge.resource == "res" and edge.kind == "queue"
    assert edge.start == 0.0 and edge.end == 1.5
    assert edge.waiter_op == "cmd.waiter"
    # Holder snapshot from wait *start*: the holder op, instance-tagged.
    assert [h.split("#")[0] for h in edge.holders] == ["cmd.holder"]
    by_root = observer.edges_by_root()
    assert list(by_root.values()) == [[edge]]


def test_zero_duration_waits_record_no_edge():
    env = Environment()
    observer = install_critpath(env)
    begun = observer.wait_begin("res")
    observer.wait_end("res", "queue", begun)  # no time passed
    assert observer.edges == []


def test_edge_cap_drops_and_counts():
    env = Environment()
    observer = install_critpath(env)
    observer.max_edges = 2
    for i in range(4):
        observer.record_edge("r", "queue", 0.0, float(i + 1), "op", None, ())
    assert len(observer.edges) == 2
    assert observer.dropped_edges == 2


def test_constructed_but_uninstalled_observer_is_invisible():
    env = Environment()
    tracer = install_tracer(env)
    CritPathObserver(env, tracer=tracer)  # never assigned to env.critpath
    assert env.critpath is None

    def cmd():
        with tracer.span("cmd.get", "command"):
            yield env.timeout(1.0)

    env.run(env.process(cmd()))
    # Instrumentation sites check env.critpath; nothing was recorded.
    report = explain_report(tracer, env.critpath, now=env.now)
    assert report["edges"] == 0


# -- the explain report -------------------------------------------------------
def _many_gets(env, tracer, durations):
    def one(duration):
        with tracer.span("cmd.get", "command"):
            with tracer.span("nand.read", "flash"):
                yield env.timeout(duration)

    def driver():
        for duration in durations:
            yield from one(duration)

    env.run(env.process(driver()))


def test_explain_report_cohorts_and_attribution():
    env = Environment()
    tracer = install_tracer(env)
    observer = install_critpath(env, tracer=tracer)
    _many_gets(env, tracer, [1.0] * 98 + [10.0, 10.0])
    report = explain_report(tracer, observer, now=env.now)
    op = report["ops"]["cmd.get"]
    assert op["count"] == 100
    assert op["p50_seconds"] == 1.0
    assert op["p99_seconds"] == 10.0
    assert op["attributed_min"] == pytest.approx(1.0)
    assert report["min_attributed"] == pytest.approx(1.0)
    p50 = op["cohorts"]["p50"]
    p99 = op["cohorts"]["p99"]
    assert p50["count"] == 98 and p99["count"] == 2
    assert list(p99["seconds_by_kind"]) == ["flash"]
    assert p99["seconds_by_kind"]["flash"] == pytest.approx(20.0)
    # Samples carry the exact tiling for external validation.
    for sample in op["samples"]:
        _tiles(sample["segments"], sample["start"], sample["end"])
    text = format_explain(report)
    assert "cmd.get" in text and "p99 cohort" in text


def test_explain_report_names_the_dominant_blocker():
    env = Environment()
    tracer = install_tracer(env)
    observer = install_critpath(env, tracer=tracer)

    def blocked_get():
        with tracer.span("cmd.get", "command") as root:
            observer.record_edge(
                "soc.query_queue", "queue", env.now, env.now + 3.0,
                "cmd.get", root.span_id, ("cmd.get#1",),
            )
            yield env.timeout(3.0)
            with tracer.span("nand.read", "flash"):
                yield env.timeout(1.0)

    env.run(env.process(blocked_get()))
    report = explain_report(tracer, observer, now=env.now)
    cohort = report["ops"]["cmd.get"]["cohorts"]["p99"]
    dominant = cohort["dominant_blocker"]
    assert dominant["resource"] == "soc.query_queue"
    assert dominant["holder_op"] == "cmd.get"
    assert dominant["seconds"] == pytest.approx(3.0)


def test_folded_stacks_and_diff():
    env = Environment()
    tracer = install_tracer(env)
    observer = install_critpath(env, tracer=tracer)
    _many_gets(env, tracer, [1.0, 2.0])
    report = explain_report(tracer, observer, now=env.now)
    folded = explain_to_folded(report)
    assert "cmd.get;flash" in folded
    # Values are integer nanoseconds: 3 virtual seconds of flash total.
    value = int(folded.split()[-1])
    assert value == 3_000_000_000

    rows = diff_explain(report, report)
    assert all(row["delta"] == 0.0 for row in rows if row["delta"] is not None)
    other = {"ops": {}, "min_attributed": 1.0}
    gone = diff_explain(report, other)
    assert gone[0]["metric"] == "present" and gone[0]["after"] is False


# -- acceptance: the saturate workload names its own bottleneck ---------------
@pytest.fixture(scope="module")
def saturate_explain():
    from repro.obs.harness import run_saturated_workload

    kv, tracer, _hub, _recorder = run_saturated_workload(
        critpath=True, reap="prompt"
    )
    return explain_report(tracer, kv.env.critpath, now=kv.env.now)


def test_saturate_attributes_at_least_95_percent(saturate_explain):
    report = saturate_explain
    assert report["edges"] > 0
    assert report["min_attributed"] >= 0.95
    for op in report["ops"].values():
        assert op["attributed_min"] >= 0.95
        for sample in op["samples"]:
            _tiles(sample["segments"], sample["start"], sample["end"])


def test_saturate_p99_cohort_names_query_queue_blocker(saturate_explain):
    """The diagnosis the engine exists for: with one SoC query worker and a
    deep submission window, the slow GETs are slow because they sat in the
    scheduler's admission queue behind other GETs — not because their own
    service time grew."""
    op = saturate_explain["ops"]["cmd.KvGetCmd"]
    cohort = op["cohorts"]["p99"]
    dominant = cohort["dominant_blocker"]
    assert dominant is not None
    assert dominant["resource"] == "soc.query_queue"
    assert dominant["holder_op"] == "cmd.KvGetCmd"
    # Queue wait dominates the cohort's time, and it is the top kind.
    kinds = cohort["seconds_by_kind"]
    assert next(iter(kinds)) == "wait.queue"
    assert kinds["wait.queue"] / cohort["total_seconds"] > 0.5
