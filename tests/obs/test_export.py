"""Tests for the Chrome-trace exporter and the latency-attribution table."""

import json

from repro.obs.export import (
    BUCKETS,
    attribute_span,
    attribution_rows,
    format_attribution,
    min_command_coverage,
    to_chrome_trace,
)
from repro.obs.trace import install_tracer
from repro.sim import Environment


def _run_sample_workload(env, tracer):
    """One command with cpu + flash work, launching a background job."""

    def job():
        with tracer.span("job.compaction", "job", lane="jobs/compaction"):
            with tracer.span("compact.sort", "stage"):
                with tracer.span(
                    "cpu.soc", "cpu", lane="soc/core0", pool="soc",
                    run=3.0, wait=1.0,
                ):
                    yield env.timeout(4.0)

    def cmd():
        with tracer.span("cmd.put", "command"):
            with tracer.span(
                "cpu.host", "cpu", lane="host/core0", pool="host",
                run=1.0, wait=0.0,
            ):
                yield env.timeout(1.0)
            with tracer.span(
                "nand.append", "flash", lane="zns0/ch0", busy=1.5,
            ) as span:
                yield env.timeout(0.5)  # queued behind another op
                span.args["wait"] = 0.5
                yield env.timeout(1.5)
            env.process(job())

    env.process(cmd())
    env.run()  # drain the background job too


def test_chrome_trace_shape():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    doc = to_chrome_trace(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == len(tracer.spans)
    lane_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"host/core0", "zns0/ch0", "soc/core0", "jobs/compaction"} <= lane_names
    # complete events sorted by (ts, tid), all fields well-formed
    order = [(e["ts"], e["tid"]) for e in spans]
    assert order == sorted(order)
    for e in spans:
        assert e["pid"] == 1 and e["dur"] >= 0 and "span_id" in e["args"]
    # microsecond stamps from the virtual clock
    put = next(e for e in spans if e["name"] == "cmd.put")
    assert put["ts"] == 0.0 and put["dur"] == 3.0 * 1e6
    # the whole document is valid strict JSON
    json.loads(json.dumps(doc, allow_nan=False))


def test_spans_without_lane_inherit_an_ancestor_lane():
    env = Environment()
    tracer = install_tracer(env)

    def proc():
        with tracer.span("cmd.x", "command"):
            with tracer.span("outer", "stage", lane="soc/core1"):
                with tracer.span("inner", "stage"):
                    yield env.timeout(1.0)

    env.run(env.process(proc()))
    doc = to_chrome_trace(tracer)
    spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    assert spans["inner"]["tid"] == spans["outer"]["tid"]
    assert spans["cmd.x"]["tid"] != spans["outer"]["tid"]


def test_attribute_span_buckets():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    cpu = next(s for s in tracer.spans if s.name == "cpu.soc")
    buckets = attribute_span(cpu)
    assert buckets["soc_cpu"] == 3.0
    assert buckets["queue"] == 1.0
    flash = next(s for s in tracer.spans if s.name == "nand.append")
    buckets = attribute_span(flash)
    assert buckets["flash"] == 1.5
    assert buckets["queue"] == 0.5


def test_attribution_rows_prune_background_jobs():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    rows = {row["op"]: row for row in attribution_rows(tracer)}
    assert set(rows) == {"cmd.put", "job.compaction"}
    put = rows["cmd.put"]
    # the job's 4 simulated seconds must not inflate the 3-second command
    assert put["total_s"] == 3.0
    assert put["host_cpu"] == 1.0
    assert put["flash"] == 1.5
    assert put["queue"] == 0.5
    assert put["soc_cpu"] == 0.0
    job = rows["job.compaction"]
    assert job["soc_cpu"] == 3.0
    assert job["queue"] == 1.0
    assert min_command_coverage(tracer) == 1.0

    text = format_attribution(attribution_rows(tracer))
    lines = text.splitlines()
    assert lines[0].split()[:3] == ["op", "count", "total_s"]
    assert any(line.startswith("cmd.put") for line in lines)
    for bucket in BUCKETS:
        assert bucket in lines[0]


def test_attribution_rows_prune_inline_job_subtrees():
    """Hand-built tree: a job span *inside* the still-open command span.

    The pruning walk must stop at the job boundary — the job's SoC CPU
    seconds belong to the job's own row, never the launching command's —
    while count/total/coverage still aggregate over every command
    instance in the group.
    """
    env = Environment()
    tracer = install_tracer(env)

    def cmd(tail: float):
        with tracer.span("cmd.compact", "command"):
            with tracer.span(
                "cpu.host", "cpu", pool="host", run=1.0, wait=0.0
            ):
                yield env.timeout(1.0)
            # Inline job subtree: pruned from the command's buckets.
            with tracer.span("job.flush", "job"):
                with tracer.span(
                    "cpu.soc", "cpu", pool="soc", run=2.0, wait=0.0
                ):
                    yield env.timeout(2.0)
            if tail:
                yield env.timeout(tail)  # un-spanned tail

    env.run(env.process(cmd(0.0)))
    env.run(env.process(cmd(1.0)))

    rows = {row["op"]: row for row in attribution_rows(tracer)}
    assert set(rows) == {"cmd.compact", "job.flush"}
    cmd_row = rows["cmd.compact"]
    assert cmd_row["count"] == 2
    # The job subtree's 2x2s of SoC CPU must not leak into the command.
    assert cmd_row["soc_cpu"] == 0.0
    assert cmd_row["host_cpu"] == 2.0
    assert cmd_row["total_s"] == 7.0  # 3s + 4s wall
    # Worst instance in the group: the second command's 1s tail is
    # uncovered, 3/4 of its duration attributed.
    assert cmd_row["coverage"] == 0.75
    job_row = rows["job.flush"]
    assert job_row["count"] == 2
    assert job_row["soc_cpu"] == 4.0
    assert job_row["coverage"] == 1.0

    text = format_attribution(attribution_rows(tracer))
    lines = text.splitlines()
    # Header, separator, one row per op — aligned fixed-width columns.
    assert len(lines) == 4
    assert lines[0].split()[:3] == ["op", "count", "total_s"]
    assert set(lines[0].split()) >= set(BUCKETS) | {"op", "count", "coverage"}
    compact_line = next(li for li in lines if li.startswith("cmd.compact"))
    fields = compact_line.split()
    assert fields[1] == "2"
    assert fields[2] == "7.000000"
    assert fields[-1] == "75.0%"


def test_min_command_coverage_flags_unattributed_time():
    env = Environment()
    tracer = install_tracer(env)

    def proc():
        with tracer.span("cmd.sparse", "command"):
            with tracer.span("step", "stage"):
                yield env.timeout(1.0)
            yield env.timeout(3.0)  # un-spanned tail

    env.run(env.process(proc()))
    assert min_command_coverage(tracer) == 0.25
