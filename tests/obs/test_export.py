"""Tests for the Chrome-trace exporter and the latency-attribution table."""

import json

from repro.obs.export import (
    BUCKETS,
    attribute_span,
    attribution_rows,
    format_attribution,
    min_command_coverage,
    to_chrome_trace,
)
from repro.obs.trace import install_tracer
from repro.sim import Environment


def _run_sample_workload(env, tracer):
    """One command with cpu + flash work, launching a background job."""

    def job():
        with tracer.span("job.compaction", "job", lane="jobs/compaction"):
            with tracer.span("compact.sort", "stage"):
                with tracer.span(
                    "cpu.soc", "cpu", lane="soc/core0", pool="soc",
                    run=3.0, wait=1.0,
                ):
                    yield env.timeout(4.0)

    def cmd():
        with tracer.span("cmd.put", "command"):
            with tracer.span(
                "cpu.host", "cpu", lane="host/core0", pool="host",
                run=1.0, wait=0.0,
            ):
                yield env.timeout(1.0)
            with tracer.span(
                "nand.append", "flash", lane="zns0/ch0", busy=1.5,
            ) as span:
                yield env.timeout(0.5)  # queued behind another op
                span.args["wait"] = 0.5
                yield env.timeout(1.5)
            env.process(job())

    env.process(cmd())
    env.run()  # drain the background job too


def test_chrome_trace_shape():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    doc = to_chrome_trace(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == len(tracer.spans)
    lane_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"host/core0", "zns0/ch0", "soc/core0", "jobs/compaction"} <= lane_names
    # complete events sorted by (ts, tid), all fields well-formed
    order = [(e["ts"], e["tid"]) for e in spans]
    assert order == sorted(order)
    for e in spans:
        assert e["pid"] == 1 and e["dur"] >= 0 and "span_id" in e["args"]
    # microsecond stamps from the virtual clock
    put = next(e for e in spans if e["name"] == "cmd.put")
    assert put["ts"] == 0.0 and put["dur"] == 3.0 * 1e6
    # the whole document is valid strict JSON
    json.loads(json.dumps(doc, allow_nan=False))


def test_spans_without_lane_inherit_an_ancestor_lane():
    env = Environment()
    tracer = install_tracer(env)

    def proc():
        with tracer.span("cmd.x", "command"):
            with tracer.span("outer", "stage", lane="soc/core1"):
                with tracer.span("inner", "stage"):
                    yield env.timeout(1.0)

    env.run(env.process(proc()))
    doc = to_chrome_trace(tracer)
    spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    assert spans["inner"]["tid"] == spans["outer"]["tid"]
    assert spans["cmd.x"]["tid"] != spans["outer"]["tid"]


def test_attribute_span_buckets():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    cpu = next(s for s in tracer.spans if s.name == "cpu.soc")
    buckets = attribute_span(cpu)
    assert buckets["soc_cpu"] == 3.0
    assert buckets["queue"] == 1.0
    flash = next(s for s in tracer.spans if s.name == "nand.append")
    buckets = attribute_span(flash)
    assert buckets["flash"] == 1.5
    assert buckets["queue"] == 0.5


def test_attribution_rows_prune_background_jobs():
    env = Environment()
    tracer = install_tracer(env)
    _run_sample_workload(env, tracer)

    rows = {row["op"]: row for row in attribution_rows(tracer)}
    assert set(rows) == {"cmd.put", "job.compaction"}
    put = rows["cmd.put"]
    # the job's 4 simulated seconds must not inflate the 3-second command
    assert put["total_s"] == 3.0
    assert put["host_cpu"] == 1.0
    assert put["flash"] == 1.5
    assert put["queue"] == 0.5
    assert put["soc_cpu"] == 0.0
    job = rows["job.compaction"]
    assert job["soc_cpu"] == 3.0
    assert job["queue"] == 1.0
    assert min_command_coverage(tracer) == 1.0

    text = format_attribution(attribution_rows(tracer))
    lines = text.splitlines()
    assert lines[0].split()[:3] == ["op", "count", "total_s"]
    assert any(line.startswith("cmd.put") for line in lines)
    for bucket in BUCKETS:
        assert bucket in lines[0]


def test_min_command_coverage_flags_unattributed_time():
    env = Environment()
    tracer = install_tracer(env)

    def proc():
        with tracer.span("cmd.sparse", "command"):
            with tracer.span("step", "stage"):
                yield env.timeout(1.0)
            yield env.timeout(3.0)  # un-spanned tail

    env.run(env.process(proc()))
    assert min_command_coverage(tracer) == 0.25
