"""Snapshot schema stability and rendering for ``repro inspect``."""

import json

from repro.obs.inspect import (
    SNAPSHOT_SCHEMA_VERSION,
    device_snapshot,
    format_snapshot,
    snapshot_json,
)

#: the stable top-level contract of a snapshot; additions bump the version
TOP_LEVEL_KEYS = {"schema_version", "time", "device", "journal"}
DEVICE_KEYS = {
    "keyspaces",
    "membufs",
    "sequence_numbers",
    "zone_manager",
    "metadata_zone",
    "ssd",
    "soc",
    "block_cache",
    "jobs",
    "counters",
    "compaction_shards",
    "query_workers",
    "query_scheduler",
    "bloom_dram_bytes",
    "mount_stages",
}


def test_snapshot_schema_version_and_top_level(compacted_kv):
    kv, _auditor, _report = compacted_kv
    snapshot = device_snapshot(kv.device)
    assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION == 2
    assert set(snapshot) == TOP_LEVEL_KEYS
    assert snapshot["time"] == kv.env.now


def test_snapshot_device_section_keys_stable(compacted_kv):
    kv, _auditor, _report = compacted_kv
    assert set(device_snapshot(kv.device)["device"]) == DEVICE_KEYS


def test_snapshot_is_json_round_trippable_and_deterministic(compacted_kv):
    kv, _auditor, _report = compacted_kv
    text = snapshot_json(kv.device)
    parsed = json.loads(text)
    assert parsed["schema_version"] == SNAPSHOT_SCHEMA_VERSION
    # sort_keys + unchanged state => byte-identical re-render
    assert snapshot_json(kv.device) == text


def test_snapshot_reflects_compacted_keyspace(compacted_kv):
    kv, _auditor, _report = compacted_kv
    ks = device_snapshot(kv.device)["device"]["keyspaces"]["ks"]
    assert ks["state"] == "compacted"
    assert ks["n_pairs"] == 800
    assert ks["pidx_sketch"]["n_blocks"] > 0
    assert "val64" in ks["sidx"]
    # compacted keyspaces have released their unsorted logs
    assert ks["clusters"]["klog"] == []
    assert ks["clusters"]["vlog"] == []


def test_snapshot_includes_zns_zone_table(compacted_kv):
    kv, _auditor, _report = compacted_kv
    ssd = device_snapshot(kv.device)["device"]["ssd"]
    assert sum(ssd["zones_by_state"].values()) == ssd["geometry"]["n_zones"]
    for row in ssd["open_or_full_zones"]:
        assert row["write_pointer"] > 0


def test_snapshot_creates_no_simulation_events(compacted_kv):
    kv, _auditor, _report = compacted_kv
    before = kv.env.now
    device_snapshot(kv.device)
    snapshot_json(kv.device)
    assert kv.env.now == before


def test_format_snapshot_renders_tree(compacted_kv):
    kv, _auditor, _report = compacted_kv
    text = format_snapshot(device_snapshot(kv.device))
    assert text.startswith(f"kv-csd snapshot (schema v{SNAPSHOT_SCHEMA_VERSION}")
    assert "keyspaces:" in text
    assert "zone_manager:" in text
