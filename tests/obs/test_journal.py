"""Event-journal semantics: taxonomy, ordering, ring bounds, span joins."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.journal import EVENT_TYPES, install_journal
from repro.obs.trace import install_tracer, trace_span
from repro.sim import Environment


def test_unknown_event_type_raises():
    env = Environment()
    journal = install_journal(env)
    with pytest.raises(SimulationError, match="unknown journal event type"):
        journal.record("keyspace.typo")


def test_sequence_numbers_strictly_increase(compacted_kv):
    kv, _auditor, _report = compacted_kv
    seqs = [e.seq for e in kv.env.journal.events]
    assert len(seqs) > 10
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_timestamps_non_decreasing_and_virtual(compacted_kv):
    kv, _auditor, _report = compacted_kv
    times = [e.time for e in kv.env.journal.events]
    assert times == sorted(times)
    assert times[-1] <= kv.env.now


def test_workload_emits_expected_lifecycle_events(compacted_kv):
    kv, _auditor, _report = compacted_kv
    types = {e.type for e in kv.env.journal.events}
    assert types <= EVENT_TYPES
    expected = {
        "keyspace.create",
        "keyspace.open",
        "keyspace.compaction_begin",
        "keyspace.compaction_end",
        "cluster.allocate",
        "cluster.release",
        "membuf.flush",
        "compact.phase_begin",
        "compact.phase_end",
        "sketch.build",
        "sidx.build_begin",
        "sidx.build_end",
    }
    assert expected <= types


def test_compaction_phases_arrive_in_pipeline_order(compacted_kv):
    kv, _auditor, _report = compacted_kv
    begins = [
        e.fields["phase"]
        for e in kv.env.journal.of_type("compact.phase_begin")
    ]
    assert begins == [
        "read_klog", "sort", "gather", "materialize", "cleanup", "sidx"
    ]


def test_ring_capacity_drops_oldest_and_accounts():
    env = Environment()
    journal = install_journal(env, capacity=4)
    for i in range(6):
        journal.record("keyspace.create", keyspace=f"ks{i}")
    assert len(journal) == 4
    assert journal.total_recorded == 6
    assert journal.dropped == 2
    assert [e.seq for e in journal.tail(10)] == [2, 3, 4, 5]
    summary = journal.summary()
    assert summary["retained"] == 4 and summary["dropped"] == 2


def test_span_correlation_with_tracer_installed():
    env = Environment()
    tracer = install_tracer(env)
    journal = install_journal(env)
    with trace_span(env, "cmd", "command") as span:
        journal.record("keyspace.create", keyspace="ks")
    journal.record("keyspace.delete", keyspace="ks")
    inside, outside = journal.events
    assert inside.span_id == span.span_id
    assert outside.span_id is None
    assert tracer.spans  # the span itself was recorded


def test_span_id_none_without_tracer():
    env = Environment()
    journal = install_journal(env)
    event = journal.record("keyspace.create", keyspace="ks")
    assert event.span_id is None


def test_jsonl_export_round_trips(compacted_kv):
    kv, _auditor, _report = compacted_kv
    journal = kv.env.journal
    text = journal.to_jsonl()
    assert text.endswith("\n")
    lines = text.strip().split("\n")
    assert len(lines) == len(journal)
    parsed = [json.loads(line) for line in lines]
    assert [p["seq"] for p in parsed] == [e.seq for e in journal.events]
    assert all(p["type"] in EVENT_TYPES for p in parsed)


def test_empty_journal_exports_empty_jsonl():
    env = Environment()
    journal = install_journal(env)
    assert journal.to_jsonl() == ""
    assert journal.tail(5) == []


def test_of_type_filters_in_order(compacted_kv):
    kv, _auditor, _report = compacted_kv
    flushes = kv.env.journal.of_type("membuf.flush")
    assert flushes
    assert all(e.type == "membuf.flush" for e in flushes)
    assert all(e.fields["keyspace"] == "ks" for e in flushes)


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        install_journal(env, capacity=0)
