"""Tests for stats JSON export and the Prometheus-style metrics hub."""

import json
import math

from repro.obs.metrics import MetricsHub, sanitize_metric_name
from repro.sim.stats import HitRatio, StatsRegistry


def test_hit_ratio_or_zero():
    r = HitRatio("cache")
    assert math.isnan(r.ratio)
    assert r.ratio_or_zero == 0.0
    r.hit(3)
    r.miss(1)
    assert r.ratio == 0.75
    assert r.ratio_or_zero == 0.75
    assert r.summary() == {"hits": 3.0, "misses": 1.0, "hit_ratio": 0.75}


def test_registry_as_dict_is_json_safe():
    reg = StatsRegistry("kvcsd")
    reg.counter("puts").add(5)
    reg.hit_ratio("cache")  # no lookups yet: ratio must export as 0.0
    reg.histogram("lat")  # empty histogram: stats must export as 0.0
    reg.histogram("lat2").record(2.0)
    reg.series("depth").sample(0.0, 1.0)

    data = reg.as_dict()
    json.dumps(data, allow_nan=False)  # raises if any NaN leaked
    assert data["counters"] == {"puts": 5.0}
    assert data["hit_ratios"]["cache"]["hit_ratio"] == 0.0
    assert data["histograms"]["lat"]["mean"] == 0.0
    h = data["histograms"]["lat2"]
    assert (h["p50"], h["p95"], h["p99"]) == (2.0, 2.0, 2.0)
    assert data["series"]["depth"] == {"samples": 1.0, "last": 1.0}


def test_sanitize_metric_name():
    assert sanitize_metric_name("cmd.bulk_put") == "cmd_bulk_put"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("///") == "unnamed"


class _FakeIo:
    bytes_read = 100
    bytes_written = 200
    read_ops = 3
    write_ops = 4
    erase_ops = 1
    gc_bytes_copied = 50
    channel_busy = {0: 0.5, 1: 0.25}


class _FakeLink:
    bytes_tx = 1000
    bytes_rx = 2000


def _sample_hub() -> MetricsHub:
    hub = MetricsHub()
    reg = StatsRegistry("kvcsd")
    reg.counter("pairs_inserted").add(7)
    reg.hit_ratio("membuf").hit(2)
    hub.register_registry("kvcsd", reg)
    hub.register_io("zns0", _FakeIo())
    hub.register_link("pcie", _FakeLink())
    hub.observe_op("cmd.get", 0.002)
    hub.observe_op("cmd.get", 0.004)
    return hub


def test_hub_as_dict():
    data = _sample_hub().as_dict()
    json.dumps(data, allow_nan=False)
    assert data["registries"]["kvcsd"]["counters"]["pairs_inserted"] == 7.0
    assert data["io"]["zns0"]["erase_ops"] == 1
    assert data["io"]["zns0"]["channel_busy_seconds"] == {0: 0.5, 1: 0.25}
    assert data["links"]["pcie"]["bytes_tx"] == 1000
    assert data["op_latency"]["cmd.get"]["count"] == 2.0


def test_prometheus_exposition():
    text = _sample_hub().to_prometheus()
    assert "# TYPE repro_kvcsd_pairs_inserted_total counter" in text
    assert "repro_kvcsd_pairs_inserted_total 7.0" in text
    assert "repro_kvcsd_membuf_hit_ratio 1.0" in text
    assert 'repro_ssd_bytes_read_total{device="zns0"} 100.0' in text
    assert 'repro_ssd_erase_ops_total{device="zns0"} 1.0' in text
    assert (
        'repro_ssd_channel_busy_seconds_total{device="zns0",channel="0"} 0.5'
        in text
    )
    assert 'repro_link_bytes_rx_total{link="pcie"} 2000.0' in text
    assert 'repro_op_latency_seconds{op="cmd.get",quantile="0.5"} 0.002' in text
    assert 'repro_op_latency_seconds_count{op="cmd.get"} 2.0' in text
    # every non-comment line is "name{labels} value" with a float value
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)
