"""End-to-end observability tests against the real KV-CSD testbed."""

import pytest

from repro.bench import build_kvcsd_testbed
from repro.obs import min_command_coverage, to_chrome_trace
from repro.workloads import SyntheticSpec, generate_pairs, load_phase

N_PAIRS = 2000


def _run_workload(kv, n_pairs=N_PAIRS, queries=True):
    pairs = generate_pairs(SyntheticSpec(n_pairs=n_pairs, seed=0))
    load_phase(kv.env, kv.adapter, [("ks", pairs, kv.thread_ctx(0))])

    def wait():
        yield from kv.device.wait_for_jobs("ks")

    kv.env.run(kv.env.process(wait()))
    if not queries:
        return
    keys = [k for k, _ in pairs[::100]]

    def run_queries():
        ctx = kv.thread_ctx(0)
        yield from kv.adapter.prepare_queries("ks", ctx)
        for key in keys:
            yield from kv.client.get("ks", key, ctx)

    kv.env.run(kv.env.process(run_queries()))


@pytest.fixture(scope="module")
def traced_testbed():
    kv = build_kvcsd_testbed(seed=0, compaction_shards=4)
    tracer, hub = kv.enable_tracing()
    _run_workload(kv)
    return kv, tracer, hub


def test_tracing_does_not_perturb_virtual_time(traced_testbed):
    kv, _tracer, _hub = traced_testbed
    plain = build_kvcsd_testbed(seed=0, compaction_shards=4)
    _run_workload(plain)
    assert plain.env.now == kv.env.now
    assert plain.io_snapshot() == kv.io_snapshot()


def test_every_span_is_finished_and_well_ordered(traced_testbed):
    _kv, tracer, _hub = traced_testbed
    now = tracer.env.now
    for span in tracer.spans:
        assert span.finished, span
        assert 0.0 <= span.start <= span.end <= now
        for child in span.children:
            assert child.parent is span
            assert span.start <= child.start


def test_command_coverage_is_at_least_95_percent(traced_testbed):
    _kv, tracer, _hub = traced_testbed
    assert tracer.command_roots(), "no traced commands"
    assert min_command_coverage(tracer) >= 0.95


def test_shard_spans_parent_under_the_sort_stage(traced_testbed):
    """Context propagates across the parallel compaction shard processes."""
    _kv, tracer, _hub = traced_testbed
    sort_stage = next(s for s in tracer.spans if s.name == "compact.sort")
    shards = [s for s in tracer.spans if s.name == "sort.shard"]
    assert len(shards) == 4
    assert all(s.parent is sort_stage for s in shards)
    job = sort_stage.parent
    assert job.name == "job.compaction" and job.category == "job"


def test_pipelined_materialize_spans_share_the_stage(traced_testbed):
    """The value-writer/PIDX-builder pair (a BoundedQueue handoff) nests."""
    _kv, tracer, _hub = traced_testbed
    stage = next(s for s in tracer.spans if s.name == "compact.materialize")
    names = {c.name for c in stage.children}
    assert {"materialize.value_writer", "materialize.pidx_builder"} <= names


def test_chrome_export_of_a_real_run_is_valid(traced_testbed):
    _kv, tracer, _hub = traced_testbed
    doc = to_chrome_trace(tracer)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == len(tracer.spans)
    order = [(e["ts"], e["tid"]) for e in spans]
    assert order == sorted(order)
    assert all(e["dur"] >= 0 for e in spans)


def test_hub_sees_ssd_and_link_traffic(traced_testbed):
    _kv, _tracer, hub = traced_testbed
    text = hub.to_prometheus()
    assert "repro_kvcsd_pairs_inserted_total" in text
    assert 'repro_ssd_channel_busy_seconds_total{device="zns0"' in text
    assert 'repro_link_bytes_tx_total{link="pcie"}' in text
    assert 'repro_op_latency_seconds{op="cmd.bulk_put"' in text
