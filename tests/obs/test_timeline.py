"""Tests for the continuous telemetry timeline and SLO watchdog.

Covers the sampler lifecycle (cadence, parking, re-arm across run
segments, zero-cost when idle), the sliding latency windows, the alert
state machine (fire after ``for_seconds``, clear, journal events), the
exporters (JSON, CSV, Chrome counter tracks), decimation, sparklines,
and the bounded-reservoir histogram the hub feeds from.
"""

import json
import math

import pytest

from repro.errors import SimulationError
from repro.obs.journal import install_journal
from repro.obs.metrics import MetricsHub
from repro.obs.timeline import (
    DEFAULT_RULES,
    AlertRule,
    LatencyWindow,
    TimelineConfig,
    TimelineRecorder,
    install_timeline,
    sparkline,
    timeline_to_csv,
)
from repro.sim.core import Environment
from repro.sim.stats import Histogram


def _hub_with_gauge(read):
    hub = MetricsHub()
    hub.register_gauge("test.gauge", read)
    return hub


def _busy(env, seconds, step=1e-4):
    """A process that keeps the simulation busy for ``seconds``."""

    def body():
        elapsed = 0.0
        while elapsed < seconds:
            yield env.timeout(step)
            elapsed += step

    return env.process(body())


# -- sampler lifecycle --------------------------------------------------------
def test_sampling_cadence_and_series():
    env = Environment()
    state = {"v": 0.0}
    hub = _hub_with_gauge(lambda: state["v"])
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))

    _busy(env, 10e-3, step=1e-3)
    env.run()

    # t=0 sample at start() plus one per interval while the workload ran.
    assert recorder.ticks >= 10
    series = recorder.series["test.gauge"]
    times = list(series.times)
    assert times[0] == 0.0
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(abs(d - 1e-3) < 1e-12 for d in deltas)


def test_sampler_parks_and_rearms_across_run_segments():
    env = Environment()
    hub = _hub_with_gauge(lambda: 1.0)
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))

    _busy(env, 5e-3, step=1e-3)
    env.run()  # drains: the sampler must park, not spin forever
    ticks_after_first = recorder.ticks

    _busy(env, 5e-3, step=1e-3)
    env.run()  # on_run() re-arms the parked sampler
    assert recorder.ticks > ticks_after_first


def test_constructed_but_unstarted_recorder_schedules_nothing():
    env = Environment()
    hub = _hub_with_gauge(lambda: 1.0)
    before = env._counter
    TimelineRecorder(env, hub, TimelineConfig())
    assert env._counter == before
    assert env.timeline is None

    _busy(env, 2e-3, step=1e-3)
    env.run()
    assert env._counter > before  # the workload itself made events


def test_stop_parks_the_sampler():
    env = Environment()
    hub = _hub_with_gauge(lambda: 1.0)
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))
    _busy(env, 3e-3, step=1e-3)
    env.run()
    recorder.stop()
    assert env.timeline is None
    ticks = recorder.ticks
    _busy(env, 3e-3, step=1e-3)
    env.run()
    assert recorder.ticks == ticks  # stopped: no further samples


def test_counters_queue_pairs_and_gauges_all_sampled():
    from repro.sim.stats import StatsRegistry

    env = Environment()
    hub = _hub_with_gauge(lambda: 2.5)
    reg = StatsRegistry("dev")
    reg.counter("ops").add(7)
    hub.register_registry("dev", reg)

    class _Qp:
        inflight = 3
        unreaped = 1

    hub.register_queue_pair("host-kv", _Qp())
    recorder = TimelineRecorder(env, hub, TimelineConfig())
    sampled = recorder.start().sample()
    assert sampled["test.gauge"] == 2.5
    assert sampled["ops{registry=dev}"] == 7.0
    assert sampled["qp.inflight{qp=host-kv}"] == 3.0
    assert sampled["qp.unreaped{qp=host-kv}"] == 1.0


# -- latency windows ----------------------------------------------------------
def test_latency_window_prunes_and_summarises():
    w = LatencyWindow("cmd.get", window=1.0)
    for i in range(100):
        w.observe(float(i) / 100.0, seconds=float(i + 1) / 1000.0)
    s = w.summary(now=1.0)
    assert s["count"] == 100.0
    assert s["p50"] == 0.050
    assert s["p99"] == 0.099
    # Window slides: at t=1.5 only samples from t>=0.5 remain.
    s = w.summary(now=1.5)
    assert s["count"] == 50.0
    assert s["p50"] == pytest.approx(0.075)
    # Far future: everything pruned.
    assert w.summary(now=10.0) is None
    assert len(w) == 0


def test_latency_window_rejects_bad_window():
    with pytest.raises(SimulationError):
        LatencyWindow("x", window=0.0)


def test_latency_window_empty_returns_none():
    w = LatencyWindow("cmd.get", window=1.0)
    assert w.summary(now=0.0) is None
    # Observed then fully pruned is empty again, not a stale snapshot.
    w.observe(0.0, seconds=1e-3)
    assert w.summary(now=5.0) is None


def test_latency_window_single_sample_percentiles():
    w = LatencyWindow("cmd.get", window=1.0)
    w.observe(0.5, seconds=2e-3)
    s = w.summary(now=1.0)
    assert s == {"count": 1.0, "p50": 2e-3, "p95": 2e-3, "p99": 2e-3}


def test_latency_window_two_sample_percentiles():
    w = LatencyWindow("cmd.get", window=1.0)
    w.observe(0.4, seconds=1e-3)
    w.observe(0.5, seconds=3e-3)
    s = w.summary(now=1.0)
    # Nearest-rank over n=2: p50 is the first value, p95/p99 clamp to the
    # last — never an index past the sample count.
    assert s["count"] == 2.0
    assert s["p50"] == 1e-3
    assert s["p95"] == 3e-3
    assert s["p99"] == 3e-3


def test_windowed_percentiles_appear_as_series():
    env = Environment()
    hub = MetricsHub()
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))

    def body():
        for i in range(10):
            yield env.timeout(1e-3)
            hub.observe_op("cmd.get", 1e-4 * (i + 1))

    env.run(env.process(body()))
    key = "op_latency_p99{op=cmd.get}"
    assert key in recorder.series
    assert "op_latency_rate{op=cmd.get}" in recorder.series
    assert max(recorder.series[key].values) > 0


# -- alert rules --------------------------------------------------------------
def test_alert_rule_validation():
    with pytest.raises(SimulationError):
        AlertRule("bad", "x", "!=", 1.0)
    with pytest.raises(SimulationError):
        AlertRule("bad", "x", ">", 1.0, for_seconds=-1.0)
    rule = AlertRule("ok", "x", ">=", 2.0, for_seconds=1e-3)
    assert rule.violated(2.0) and not rule.violated(1.9)
    assert rule.condition() == "x >= 2 for 0.001s"


def test_alert_fires_after_hold_and_clears():
    env = Environment()
    state = {"v": 0.0}
    hub = _hub_with_gauge(lambda: state["v"])
    install_journal(env)
    rule = AlertRule("hot", "test.gauge", ">", 5.0, for_seconds=3e-3)
    recorder = install_timeline(
        env, hub, TimelineConfig(interval=1e-3, rules=(rule,))
    )

    def body():
        yield env.timeout(2e-3)
        state["v"] = 9.0  # violation starts being observed at t=3ms
        yield env.timeout(2e-3)
        # held only 1ms by t=4ms: must NOT have fired yet
        assert recorder.alert_counts() == {"hot": 0}
        yield env.timeout(3e-3)  # held >= 3ms by t=6ms: fired
        assert recorder.firing() == ["hot"]
        state["v"] = 0.0
        yield env.timeout(2e-3)
        assert recorder.firing() == []

    env.run(env.process(body()))
    assert recorder.alert_counts() == {"hot": 1}
    (alert,) = recorder.alerts
    assert alert.rule == "hot"
    assert alert.series == "test.gauge"
    assert alert.value == 9.0
    assert alert.cleared_at is not None
    assert alert.cleared_at > alert.fired_at
    fires = env.journal.of_type("slo.alert_fire")
    clears = env.journal.of_type("slo.alert_clear")
    assert len(fires) == 1 and len(clears) == 1
    assert fires[0].fields["rule"] == "hot"


def test_alert_hold_resets_when_condition_breaks():
    env = Environment()
    state = {"v": 0.0}
    hub = _hub_with_gauge(lambda: state["v"])
    rule = AlertRule("hot", "test.gauge", ">", 5.0, for_seconds=4e-3)
    recorder = install_timeline(
        env, hub, TimelineConfig(interval=1e-3, rules=(rule,))
    )

    def body():
        # Oscillate: never continuously violated for 4ms.
        for _ in range(6):
            state["v"] = 9.0
            yield env.timeout(2e-3)
            state["v"] = 0.0
            yield env.timeout(2e-3)

    env.run(env.process(body()))
    assert recorder.alert_counts() == {"hot": 0}
    assert not recorder.alerts


def test_alert_rule_glob_matches_labeled_series():
    env = Environment()
    hub = MetricsHub()
    hub.register_gauge("qp.inflight", lambda: 60.0, labels={"qp": "host-kv"})
    hub.register_gauge("qp.inflight", lambda: 1.0, labels={"qp": "soc-blk"})
    rule = AlertRule("backlog", "qp.inflight{qp=host-kv*}", ">=", 48.0)
    recorder = TimelineRecorder(
        env, hub, TimelineConfig(interval=1e-3, rules=(rule,))
    )
    recorder.start()
    assert recorder.firing() == ["backlog"]
    (alert,) = recorder.alerts
    assert alert.series == "qp.inflight{qp=host-kv}"
    assert alert.value == 60.0


def test_default_rules_are_valid():
    names = [r.name for r in DEFAULT_RULES]
    assert len(names) == len(set(names))
    for rule in DEFAULT_RULES:
        assert rule.condition()  # constructs without error


# -- exporters ----------------------------------------------------------------
def _ramped_recorder():
    env = Environment()
    state = {"v": 0.0}
    hub = _hub_with_gauge(lambda: state["v"])
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))

    def body():
        for i in range(8):
            state["v"] = float(i)
            yield env.timeout(1e-3)

    env.run(env.process(body()))
    return recorder


def test_to_json_round_trips():
    recorder = _ramped_recorder()
    doc = json.loads(json.dumps(recorder.to_json(), allow_nan=False))
    assert doc["ticks"] == recorder.ticks
    assert doc["config"]["interval"] == 1e-3
    entry = doc["series"]["test.gauge"]
    assert entry["name"] == "test.gauge"
    assert len(entry["times"]) == len(entry["values"]) == recorder.ticks
    assert doc["alert_counts"] == {r.name: 0 for r in DEFAULT_RULES}


def test_csv_export_matches_series():
    recorder = _ramped_recorder()
    lines = timeline_to_csv(recorder).strip().splitlines()
    assert lines[0] == "time,series,value"
    rows = [line.split(",") for line in lines[1:]]
    assert len(rows) == recorder.ticks  # one series
    assert all(r[1] == "test.gauge" for r in rows)
    times = [float(r[0]) for r in rows]
    assert times == sorted(times)
    # The doc form exports identically.
    assert timeline_to_csv(recorder.to_json()) == timeline_to_csv(recorder)


def test_counter_track_events_are_well_formed():
    recorder = _ramped_recorder()
    events = recorder.counter_track_events()
    assert events, "ramped run must produce counter samples"
    per_name: dict[str, list[float]] = {}
    for e in events:
        assert e["ph"] == "C"
        assert isinstance(e["args"]["value"], float)
        assert not math.isnan(e["args"]["value"])
        per_name.setdefault(e["name"], []).append(e["ts"])
    for ts_list in per_name.values():
        assert ts_list == sorted(ts_list)  # monotonic per track
    # Microsecond clock: last sample lands at ~8ms = ~8000us.
    assert max(per_name["test.gauge"]) == pytest.approx(8000.0)


def test_chrome_trace_merges_counter_tracks():
    from repro.obs.export import to_chrome_trace
    from repro.obs.trace import Tracer

    env = Environment()
    hub = _hub_with_gauge(lambda: 1.0)
    tracer = Tracer(env, hub=hub)
    env.tracer = tracer
    recorder = install_timeline(env, hub, TimelineConfig(interval=1e-3))

    def body():
        with tracer.span("cmd.get", "cmd", lane="host0"):
            yield env.timeout(2e-3)

    env.run(env.process(body()))
    trace = to_chrome_trace(tracer, timeline=recorder)["traceEvents"]
    phases = {e.get("ph") for e in trace}
    assert "C" in phases and "X" in phases
    # Counter timestamps and span timestamps share the same clock.
    spans = [e for e in trace if e.get("ph") == "X"]
    counters = [e for e in trace if e.get("ph") == "C"]
    assert max(c["ts"] for c in counters) <= (
        max(s["ts"] + s["dur"] for s in spans) + 1e-6
    )


# -- decimation ---------------------------------------------------------------
def test_decimation_bounds_memory_and_doubles_cadence():
    env = Environment()
    hub = _hub_with_gauge(lambda: 1.0)
    config = TimelineConfig(interval=1e-4, max_ticks=16)
    recorder = install_timeline(env, hub, config)
    _busy(env, 100 * 1e-4, step=1e-4)
    env.run()
    # Decimation halves retention and doubles the cadence, so the tick
    # counter keeps growing past max_ticks while retained points stay bounded.
    assert recorder.ticks >= config.max_ticks
    assert len(recorder.series["test.gauge"].times) <= config.max_ticks
    assert recorder._interval > config.interval
    assert recorder.to_json()["config"]["effective_interval"] == recorder._interval


def test_config_validation():
    with pytest.raises(SimulationError):
        TimelineConfig(interval=0.0)
    with pytest.raises(SimulationError):
        TimelineConfig(window=-1.0)
    with pytest.raises(SimulationError):
        TimelineConfig(max_ticks=2)


# -- sparklines ---------------------------------------------------------------
def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    ramp = sparkline([0.0, 1.0, 2.0, 3.0])
    assert ramp[0] == "▁" and ramp[-1] == "█"
    wide = sparkline([float(i) for i in range(1000)], width=10)
    assert len(wide) == 10
    assert wide[0] == "▁" and wide[-1] == "█"


# -- bounded histograms -------------------------------------------------------
def test_reservoir_histogram_bounds_samples_exactly():
    h = Histogram("lat", max_samples=64)
    for i in range(10_000):
        h.record(float(i))
    s = h.summary()
    assert s["count"] == 10_000.0
    assert s["mean"] == pytest.approx(4999.5)
    assert s["min"] == 0.0 and s["max"] == 9999.0
    assert len(h._sorted) == 64
    # Percentiles come from the reservoir: plausible, not exact.
    assert 2000.0 < s["p50"] < 8000.0


def test_reservoir_histogram_is_deterministic_per_name():
    def fill(name):
        h = Histogram(name, max_samples=32)
        for i in range(1000):
            h.record(float(i))
        return sorted(h._sorted)

    assert fill("cmd.get") == fill("cmd.get")  # crc32-seeded reservoir


# -- harness integration ------------------------------------------------------
def test_timed_selftest_records_device_series():
    from repro.obs.harness import run_timed_selftest

    _kv, _tracer, _hub, recorder = run_timed_selftest(seed=0, n_pairs=400)
    assert recorder.ticks > 10
    assert "soc.query_queue_depth" in recorder.series
    assert "dram.budget_used_frac" in recorder.series
    assert any(k.startswith("op_latency_p99{") for k in recorder.series)
    json.dumps(recorder.to_json(), allow_nan=False)


def test_saturated_workload_trips_the_watchdog():
    from repro.obs.harness import run_saturated_workload

    kv, _tracer, _hub, recorder = run_saturated_workload(
        seed=0, n_pairs=1024, burst=192, queue_depth=64
    )
    assert recorder.alert_counts()["query-queue-saturated"] >= 1
    fires = kv.env.journal.of_type("slo.alert_fire")
    assert any(e.fields["rule"] == "query-queue-saturated" for e in fires)
    # Saturation subsided by run end: the alert cleared.
    assert "query-queue-saturated" not in recorder.firing()
    clears = kv.env.journal.of_type("slo.alert_clear")
    assert any(e.fields["rule"] == "query-queue-saturated" for e in clears)
