"""Unit tests for the span tracer: nesting, propagation, zero-cost disable."""

from repro.obs.trace import (
    Span,
    install_tracer,
    trace_span,
    trace_wait,
    union_length,
)
from repro.sim import Environment, Event
from repro.sim.sync import BoundedQueue


def test_union_length():
    assert union_length([]) == 0.0
    assert union_length([(0.0, 1.0), (2.0, 3.0)]) == 2.0
    assert union_length([(0.0, 2.0), (1.0, 3.0)]) == 3.0
    assert union_length([(0.0, 10.0)], clip=(2.0, 5.0)) == 3.0
    assert union_length([(5.0, 4.0)]) == 0.0  # empty interval dropped


def test_disabled_env_records_nothing():
    env = Environment()
    assert env.tracer is None
    scope = trace_span(env, "x", "stage")
    with scope as span:
        assert span is None
    # the disabled scope is a shared singleton — no per-call allocation
    assert trace_span(env, "y", "stage") is scope


def test_spans_nest_within_one_process():
    env = Environment()
    tracer = install_tracer(env)

    def proc():
        with tracer.span("outer", "command"):
            yield env.timeout(1.0)
            with tracer.span("inner", "stage"):
                yield env.timeout(2.0)
            yield env.timeout(0.5)

    env.run(env.process(proc()))
    outer, inner = tracer.spans
    assert outer.name == "outer" and inner.name == "inner"
    assert inner.parent is outer
    assert outer.children == [inner]
    assert (outer.start, outer.end) == (0.0, 3.5)
    assert (inner.start, inner.end) == (1.0, 3.0)
    assert outer.self_time() == 1.5
    assert inner.self_time() == 2.0


def test_spawned_process_inherits_current_span():
    env = Environment()
    tracer = install_tracer(env)

    def child():
        with tracer.span("child.work", "stage"):
            yield env.timeout(1.0)

    def parent():
        with tracer.span("cmd.fanout", "command"):
            procs = [env.process(child()) for _ in range(3)]
            for p in procs:
                yield p

    env.run(env.process(parent()))
    root = tracer.roots()[0]
    assert [c.name for c in root.children] == ["child.work"] * 3


def test_sibling_processes_do_not_share_current_span():
    env = Environment()
    tracer = install_tracer(env)

    def worker(name):
        with tracer.span(name, "command"):
            yield env.timeout(1.0)
            with tracer.span(f"{name}.step", "stage"):
                yield env.timeout(1.0)

    env.run(env.process(worker("a")))
    env.run(env.process(worker("b")))
    roots = tracer.roots()
    assert [r.name for r in roots] == ["a", "b"]
    for root in roots:
        assert [c.name for c in root.children] == [f"{root.name}.step"]


def test_trace_wait_records_the_blocked_interval():
    env = Environment()
    tracer = install_tracer(env)
    gate = Event(env)

    def opener():
        yield env.timeout(2.5)
        gate.succeed("opened")

    def waiter():
        with tracer.span("cmd.wait", "command"):
            value = yield from trace_wait(env, gate, "gate.wait")
        return value

    env.process(opener())
    assert env.run(env.process(waiter())) == "opened"
    wait_span = next(s for s in tracer.spans if s.name == "gate.wait")
    assert wait_span.category == "queue"
    assert (wait_span.start, wait_span.end) == (0.0, 2.5)
    assert wait_span.parent.name == "cmd.wait"


def test_trace_wait_disabled_is_a_bare_yield():
    env = Environment()
    gate = Event(env)

    def opener():
        yield env.timeout(1.0)
        gate.succeed(42)

    def waiter():
        value = yield from trace_wait(env, gate, "gate.wait")
        return value

    env.process(opener())
    assert env.run(env.process(waiter())) == 42


def test_capture_activate_across_bounded_queue():
    """Trace context ships with items through a producer/consumer queue."""
    env = Environment()
    tracer = install_tracer(env)
    queue = BoundedQueue(env, capacity=1)
    done = []

    def producer():
        with tracer.span("job.produce", "job"):
            for i in range(3):
                yield env.timeout(1.0)
                yield from queue.put((i, tracer.capture()))
            yield from queue.put((None, None))

    def consumer():
        while True:
            item, ctx = yield from queue.get()
            if item is None:
                return
            with ctx.activate():
                with tracer.span("consume", "stage", item=item):
                    yield env.timeout(0.5)
            done.append(item)

    env.process(producer())
    env.run(env.process(consumer()))
    assert done == [0, 1, 2]
    produce = next(s for s in tracer.spans if s.name == "job.produce")
    consumes = [s for s in tracer.spans if s.name == "consume"]
    assert len(consumes) == 3
    assert all(s.parent is produce for s in consumes)
    # activation is scoped: the consumer has no current span afterwards
    assert tracer.current() is None


def test_context_propagates_across_parallel_sort_shards():
    """Spawned shard processes parent their spans under the sort stage."""
    env = Environment()
    tracer = install_tracer(env)

    def shard(idx):
        with tracer.span("sort.shard", "stage", shard=idx):
            yield env.timeout(1.0 + idx)

    def job():
        with tracer.span("job.compaction", "job"):
            with tracer.span("compact.sort", "stage"):
                procs = [env.process(shard(i)) for i in range(4)]
                for p in procs:
                    yield p

    env.run(env.process(job()))
    sort = next(s for s in tracer.spans if s.name == "compact.sort")
    shards = [s for s in tracer.spans if s.name == "sort.shard"]
    assert len(shards) == 4
    assert all(s.parent is sort for s in shards)
    assert sorted(s.args["shard"] for s in shards) == [0, 1, 2, 3]
    # shards overlap, so the stage is fully covered by its children
    assert sort.coverage() == 1.0


def test_span_coverage_counts_descendants_once():
    env = Environment()
    root = Span(1, "root", "command", start=0.0)
    root.end = 10.0
    a = Span(2, "a", "stage", start=0.0, parent=root)
    a.end = 4.0
    b = Span(3, "b", "stage", start=2.0, parent=root)
    b.end = 6.0
    root.children = [a, b]
    assert root.coverage() == 0.6
    assert root.self_time() == 4.0


def test_finish_feeds_command_latency_to_hub():
    class FakeHub:
        def __init__(self):
            self.seen = []

        def observe_op(self, op, seconds):
            self.seen.append((op, seconds))

    env = Environment()
    hub = FakeHub()
    tracer = install_tracer(env, hub=hub)

    def proc():
        with tracer.span("cmd.get", "command"):
            with tracer.span("step", "stage"):
                yield env.timeout(2.0)

    env.run(env.process(proc()))
    # only command/job spans are observed, not inner stages
    assert hub.seen == [("cmd.get", 2.0)]
