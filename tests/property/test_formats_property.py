"""Property-based tests (hypothesis) for serialization formats and encodings."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.klog import pack_klog_records, unpack_klog_records
from repro.core.sidx import decode_skey, encode_skey, pack_sidx_pairs, unpack_sidx_pairs
from repro.core.wire import pack_pairs, split_into_messages, unpack_pairs, pair_wire_size
from repro.lsm.block import BlockBuilder, BlockReader
from repro.lsm.bloom import BloomFilter
from repro.lsm.sstable import decode_value, encode_value

keys = st.binary(min_size=1, max_size=64)
values = st.binary(min_size=0, max_size=256)
pairs_lists = st.lists(st.tuples(keys, values), max_size=50)


@given(pairs_lists)
def test_wire_roundtrip(pairs):
    assert unpack_pairs(pack_pairs(pairs)) == pairs


@given(pairs_lists, st.integers(min_value=64, max_value=4096))
def test_wire_split_preserves_order_and_budget(pairs, budget):
    messages = split_into_messages(pairs, budget)
    assert [p for m in messages for p in m] == pairs
    for message in messages:
        if len(message) > 1:
            wire = 4 + sum(pair_wire_size(k, v) for k, v in message)
            assert wire <= budget


@given(
    st.lists(
        st.tuples(
            keys,
            st.integers(min_value=0, max_value=2**63),
            st.one_of(
                st.none(),
                st.tuples(
                    st.integers(0, 2**31 - 1),
                    st.integers(0, 2**62),
                    st.integers(0, 2**31 - 2),
                ),
            ),
        ),
        max_size=30,
    )
)
def test_klog_roundtrip(records):
    blob = pack_klog_records(records)
    assert unpack_klog_records(blob) == records


@given(st.lists(st.tuples(st.binary(max_size=32), st.binary(max_size=32)), max_size=30))
def test_sidx_pairs_roundtrip(pairs):
    assert unpack_sidx_pairs(pack_sidx_pairs(pairs)) == pairs


@given(st.one_of(st.none(), values))
def test_value_encoding_roundtrip(value):
    is_tombstone, decoded = decode_value(encode_value(value))
    assert is_tombstone == (value is None)
    assert decoded == value


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=60, unique_by=lambda p: p[0]))
def test_block_roundtrip_sorted(entries):
    entries = sorted(entries)
    builder = BlockBuilder(target_bytes=4096)
    for k, v in entries:
        builder.add(k, v)
    reader = BlockReader(builder.finish())
    assert reader.entries() == entries
    for k, v in entries:
        assert reader.get(k) == v


@given(st.lists(keys, min_size=1, max_size=200, unique=True))
def test_bloom_never_false_negative(key_list):
    bf = BloomFilter(n_keys=len(key_list), bits_per_key=10)
    for k in key_list:
        bf.add(k)
    assert all(bf.may_contain(k) for k in key_list)
    clone = BloomFilter.from_bytes(bf.to_bytes())
    assert all(clone.may_contain(k) for k in key_list)


# ---------------------------------------------------------------- encodings
@given(st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=30))
def test_u32_encoding_order(xs):
    raws = [struct.pack("<I", x) for x in xs]
    encoded = [(encode_skey(r, "u32"), x) for r, x in zip(raws, xs)]
    assert sorted(encoded, key=lambda e: e[0]) == sorted(encoded, key=lambda e: e[1])
    for r in raws:
        assert decode_skey(encode_skey(r, "u32"), "u32") == r


@given(st.lists(st.integers(-(2**63), 2**63 - 1), min_size=2, max_size=30))
def test_i64_encoding_order(xs):
    raws = [struct.pack("<q", x) for x in xs]
    encoded = [(encode_skey(r, "i64"), x) for r, x in zip(raws, xs)]
    assert sorted(encoded, key=lambda e: e[0]) == sorted(encoded, key=lambda e: e[1])
    for r in raws:
        assert decode_skey(encode_skey(r, "i64"), "i64") == r


@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=True, width=64),
        min_size=2,
        max_size=30,
    )
)
def test_f64_encoding_order(xs):
    raws = [struct.pack("<d", x) for x in xs]
    encoded = [(encode_skey(r, "f64"), x) for r, x in zip(raws, xs)]
    by_enc = sorted(range(len(xs)), key=lambda i: encoded[i][0])
    by_val = sorted(range(len(xs)), key=lambda i: (xs[i], raws[i]))
    # identical ordering up to ties in the float value (-0.0 vs 0.0 tie-breaks
    # by bit pattern, which is acceptable for index ordering)
    assert [xs[i] for i in by_enc] == [xs[i] for i in by_val] or sorted(
        xs
    ) == sorted(xs)
    for i, x in enumerate(xs):
        assert decode_skey(encode_skey(raws[i], "f64"), "f64") == raws[i]
    # strict order preservation for strictly increasing values
    unique = sorted(set(xs))
    unique_enc = [encode_skey(struct.pack("<d", x), "f64") for x in unique]
    assert unique_enc == sorted(unique_enc)


@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=True, width=32),
        min_size=1,
        max_size=30,
    )
)
def test_f32_encoding_order(xs):
    unique = sorted(set(xs))
    unique_enc = [encode_skey(struct.pack("<f", x), "f32") for x in unique]
    assert unique_enc == sorted(unique_enc)
