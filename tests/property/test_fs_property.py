"""Model-based property test: the simulated filesystem versus bytearrays."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sort import ExternalSorter
from repro.core.zone_manager import ZoneManager
from repro.host import Filesystem, PageCache, ThreadCtx
from repro.nvme import NvmeController, QueuePair
from repro.sim import CpuPool, Environment
from repro.ssd import ConventionalSsd, SsdGeometry, ZnsSsd
from repro.units import MiB

fs_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.sampled_from(["a", "b"]),
            st.integers(0, 20_000),
            st.binary(min_size=1, max_size=6000),
        ),
        st.tuples(
            st.just("read"),
            st.sampled_from(["a", "b"]),
            st.integers(0, 25_000),
            st.integers(0, 8000),
        ),
        st.tuples(st.just("fsync"), st.sampled_from(["a", "b"]), st.just(0), st.just(0)),
        st.tuples(st.just("drop"), st.just("a"), st.just(0), st.just(0)),
    ),
    max_size=30,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(fs_ops)
def test_filesystem_matches_bytearray_model(ops):
    """Reads always return what a plain in-memory file would, across buffered
    writes, writebacks, fsyncs and cache drops."""
    env = Environment()
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(
            n_channels=2, n_zones=32, zone_size=MiB, pages_per_block=32
        ),
    )
    qp = QueuePair(env, NvmeController(env, ssd), depth=16)
    # A deliberately tiny cache forces evictions + writebacks mid-sequence.
    fs = Filesystem(env, qp, PageCache(64 * 1024), journal_pages=16)
    cpu = CpuPool(env, 1)
    ctx = ThreadCtx(cpu=cpu, core=0)
    model: dict[str, bytearray] = {"a": bytearray(), "b": bytearray()}

    def driver():
        yield from fs.create("a", ctx)
        yield from fs.create("b", ctx)
        for op, name, offset, payload in ops:
            if op == "write":
                data = payload
                yield from fs.write(name, offset, data, ctx)
                buf = model[name]
                if len(buf) < offset + len(data):
                    buf.extend(b"\x00" * (offset + len(data) - len(buf)))
                buf[offset : offset + len(data)] = data
            elif op == "read":
                length = payload
                got = yield from fs.read(name, offset, length, ctx)
                buf = model[name]
                expected = bytes(buf[offset : offset + max(0, length)])
                assert got == expected, (name, offset, length)
            elif op == "fsync":
                yield from fs.fsync(name, ctx)
            else:
                fs.drop_caches()
        # final full read-back of both files
        for name, buf in model.items():
            got = yield from fs.read(name, 0, len(buf) + 10, ctx)
            assert got == bytes(buf)
            assert fs.file_size(name) == len(buf)

    env.run(env.process(driver()))


sort_records = st.lists(
    st.tuples(st.binary(min_size=1, max_size=12), st.binary(max_size=16)),
    max_size=200,
)


@settings(max_examples=25, deadline=None)
@given(sort_records, st.integers(min_value=256, max_value=1 << 20))
def test_external_sort_equals_sorted(records, budget):
    """The external sorter's output equals ``sorted()`` for any budget."""
    env = Environment()
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=2, n_zones=32, zone_size=4 * MiB)
    )
    zm = ZoneManager(ssd, np.random.default_rng(0), cluster_zones=2)

    def pack(recs):
        parts = []
        for key, payload in recs:
            parts.append(len(key).to_bytes(2, "little"))
            parts.append(key)
            parts.append(len(payload).to_bytes(2, "little"))
            parts.append(payload)
        return b"".join(parts)

    def unpack(blob):
        out = []
        pos = 0
        while pos < len(blob):
            klen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            key = blob[pos : pos + klen]
            pos += klen
            plen = int.from_bytes(blob[pos : pos + 2], "little")
            pos += 2
            out.append((key, blob[pos : pos + plen]))
            pos += plen
        return out

    sorter = ExternalSorter(
        zm,
        budget_bytes=budget,
        compare_cost=25e-9,
        pack=pack,
        unpack=unpack,
        sort_key=lambda record: record,  # total order even with dup keys
    )
    cpu = CpuPool(env, 2)
    ctx = ThreadCtx(cpu=cpu)
    total = sum(len(k) + len(p) + 4 for k, p in records)

    def proc():
        out = yield from sorter.sort(records, total, ctx)
        return out

    result = env.run(env.process(proc()))
    assert result == sorted(records)
    assert zm.allocated_clusters == 0  # temp space always released
