"""Property tests for device-side query semantics against a sorted model."""

import struct

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import KvCsdClient, KvCsdDevice, SidxConfig
from repro.host import ThreadCtx
from repro.nvme import PcieLink
from repro.sim import CpuPool, Environment
from repro.soc import SocBoard
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import MiB


def build(pairs, sidx_config=None):
    env = Environment()
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=2, n_zones=32, zone_size=2 * MiB)
    )
    board = SocBoard(env, ssd)
    device = KvCsdDevice(board, rng=np.random.default_rng(1), cluster_zones=2)
    client = KvCsdClient(device, PcieLink(env))
    ctx = ThreadCtx(cpu=CpuPool(env, 2), core=0)

    def setup():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        if pairs:
            yield from client.bulk_put("ks", pairs, ctx)
        configs = [sidx_config] if sidx_config else []
        yield from client.compact("ks", ctx, secondary_indexes=configs)
        yield from client.wait_for_device("ks", ctx)

    env.run(env.process(setup()))
    return env, client, ctx


range_case = st.tuples(
    st.dictionaries(
        st.binary(min_size=1, max_size=8),
        st.binary(min_size=0, max_size=16),
        min_size=1,
        max_size=40,
    ),
    st.binary(max_size=9),
    st.binary(max_size=9),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(range_case)
def test_primary_range_query_matches_sorted_model(case):
    model, lo, hi = case
    env, client, ctx = build(sorted(model.items()))

    def query():
        rows = yield from client.range_query("ks", lo, hi, ctx)
        return rows

    rows = env.run(env.process(query()))
    expected = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert rows == expected


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=40),
    st.integers(-(2**31), 2**31 - 1),
    st.integers(-(2**31), 2**31 - 1),
)
def test_sidx_range_query_matches_numeric_filter(tags, bound_a, bound_b):
    lo_v, hi_v = min(bound_a, bound_b), max(bound_a, bound_b)
    pairs = [
        (f"k{i:06d}".encode(), struct.pack("<i", tag) + bytes(4))
        for i, tag in enumerate(tags)
    ]
    config = SidxConfig("tag", value_offset=0, width=4, dtype="i32")
    env, client, ctx = build(pairs, sidx_config=config)

    def query():
        rows = yield from client.sidx_range_query(
            "ks", "tag", struct.pack("<i", lo_v), struct.pack("<i", hi_v), ctx
        )
        return rows

    rows = env.run(env.process(query()))
    expected = {
        key for (key, _v), tag in zip(pairs, tags) if lo_v <= tag < hi_v
    }
    assert {k for k, _ in rows} == expected
    # full records come back
    by_key = dict(pairs)
    assert all(v == by_key[k] for k, v in rows)
