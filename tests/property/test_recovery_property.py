"""Property test: a power cycle at an arbitrary point never loses
acknowledged, log-resident data nor resurrects deleted keys."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import KvCsdClient, KvCsdDevice
from repro.core.keyspace import KeyspaceState
from repro.errors import KeyNotFoundError
from repro.host import ThreadCtx
from repro.nvme import PcieLink
from repro.sim import CpuPool, Environment
from repro.soc import SocBoard
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import KiB, MiB

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(min_size=1, max_size=6),
                  st.binary(max_size=20)),
        st.tuples(st.just("delete"), st.binary(min_size=1, max_size=6),
                  st.just(b"")),
    ),
    max_size=50,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops_strategy, st.booleans())
def test_power_cycle_preserves_log_resident_state(ops, compact_before_cut):
    env = Environment()
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=2, n_zones=16, zone_size=MiB)
    )
    board = SocBoard(env, ssd)
    # Tiny membuf: every put is flushed to the KLOG immediately, so all
    # acknowledged state is log-resident (the property under test).
    device = KvCsdDevice(
        board, rng=np.random.default_rng(0), cluster_zones=2, membuf_bytes=1024
    )
    client = KvCsdClient(device, PcieLink(env))
    ctx = ThreadCtx(cpu=CpuPool(env, 2), core=0)
    model: dict[bytes, bytes] = {}

    def phase1():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        for op, key, value in ops:
            if op == "put":
                yield from client.put("ks", key, value, ctx)
                model[key] = value
            else:
                yield from client.bulk_delete("ks", [key], ctx)
                model.pop(key, None)
        if compact_before_cut:
            yield from client.compact("ks", ctx)
            yield from client.wait_for_device("ks", ctx)
        else:
            # make acknowledged writes durable (the paper's explicit fsync)
            yield from client.fsync("ks", ctx)

    env.run(env.process(phase1()))

    # --- power cycle ---------------------------------------------------------
    board2 = SocBoard(env, ssd)
    device2 = KvCsdDevice(
        board2, rng=np.random.default_rng(1), cluster_zones=2, membuf_bytes=1024
    )
    client2 = KvCsdClient(device2, PcieLink(env))

    def phase2():
        yield from device2.recover(ctx)
        ks = device2.keyspaces.get("ks")
        assert ks is not None
        if ks.state is KeyspaceState.WRITABLE:
            yield from client2.compact("ks", ctx)
            yield from client2.wait_for_device("ks", ctx)
        for key, expected in model.items():
            got = yield from client2.get("ks", key, ctx)
            assert got == expected, key
        try:
            yield from client2.get("ks", b"\xfe" * 7, ctx)
            raise AssertionError("ghost key present")
        except KeyNotFoundError:
            pass
        rows = yield from client2.range_query("ks", b"", b"\xff" * 8, ctx)
        assert rows == sorted(model.items())

    env.run(env.process(phase2()))
