"""Model-based property tests: both key-value stores versus a dict model.

These drive random operation sequences through the full simulated stacks
(LSM over ext4 over the FTL SSD; KV-CSD over the ZNS SSD) and check that
every observable result matches a plain dictionary executing the same
sequence — the strongest end-to-end correctness statement the library makes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import KvCsdClient, KvCsdDevice
from repro.errors import KeyNotFoundError
from repro.host import Filesystem, PageCache, ThreadCtx
from repro.lsm import Db, DbOptions
from repro.nvme import NvmeController, PcieLink, QueuePair
from repro.sim import CpuPool, Environment
from repro.soc import SocBoard
from repro.ssd import ConventionalSsd, SsdGeometry, ZnsSsd
from repro.units import KiB, MiB

# Small key/value spaces force overwrites, deletes of present keys, and
# flush/compaction boundaries to interact.
small_keys = st.binary(min_size=1, max_size=6)
small_values = st.binary(min_size=0, max_size=24)

lsm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("delete"), small_keys, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
    ),
    max_size=60,
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(lsm_ops)
def test_lsm_db_matches_dict_model(ops):
    env = Environment()
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(
            n_channels=2, n_zones=16, zone_size=MiB, pages_per_block=32
        ),
    )
    qp = QueuePair(env, NvmeController(env, ssd), depth=16)
    fs = Filesystem(env, qp, PageCache(4 * MiB), journal_pages=16)
    cpu = CpuPool(env, 2)
    ctx = ThreadCtx(cpu=cpu, core=0)
    bg = ThreadCtx(cpu=cpu, cores=(0, 1), priority=5)
    db = Db(
        env,
        fs,
        bg_ctx=bg,
        options=DbOptions(
            memtable_bytes=4 * KiB,
            l1_target_bytes=16 * KiB,
            target_file_bytes=8 * KiB,
            block_cache_bytes=64 * KiB,
            enable_wal=False,
        ),
    )
    model: dict[bytes, bytes] = {}

    def driver():
        yield from db.open(ctx)
        for op, key, value in ops:
            if op == "put":
                yield from db.put(key, value, ctx)
                model[key] = value
            elif op == "delete":
                yield from db.delete(key, ctx)
                model.pop(key, None)
            else:
                yield from db.flush(ctx)
        yield from db.flush(ctx)
        yield from db.wait_for_compaction()
        # verify every key the model knows, plus a key it doesn't
        for key, expected in model.items():
            got = yield from db.get(key, ctx)
            assert got == expected, (key, got, expected)
        ghost = yield from db.get(b"\xff" * 7, ctx)
        assert ghost is None
        # a full scan matches the sorted model
        scan = yield from db.scan(b"", b"\xff" * 8, ctx)
        assert scan == sorted(model.items())

    env.run(env.process(driver()))


csd_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("delete"), small_keys, st.just(b"")),
    ),
    max_size=60,
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(csd_ops)
def test_kvcsd_matches_dict_model(ops):
    env = Environment()
    ssd = ZnsSsd(
        env, geometry=SsdGeometry(n_channels=2, n_zones=16, zone_size=MiB)
    )
    board = SocBoard(env, ssd)
    device = KvCsdDevice(board, rng=np.random.default_rng(0), cluster_zones=2)
    client = KvCsdClient(device, PcieLink(env))
    cpu = CpuPool(env, 2)
    ctx = ThreadCtx(cpu=cpu, core=0)
    model: dict[bytes, bytes] = {}

    def driver():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        for op, key, value in ops:
            if op == "put":
                yield from client.put("ks", key, value, ctx)
                model[key] = value
            else:
                yield from client.bulk_delete("ks", [key], ctx)
                model.pop(key, None)
        yield from client.compact("ks", ctx)
        yield from client.wait_for_device("ks", ctx)
        for key, expected in model.items():
            got = yield from client.get("ks", key, ctx)
            assert got == expected, (key, got, expected)
        try:
            yield from client.get("ks", b"\xff" * 7, ctx)
            raise AssertionError("ghost key should be absent")
        except KeyNotFoundError:
            pass
        rows = yield from client.range_query("ks", b"", b"\xff" * 8, ctx)
        assert rows == sorted(model.items())
        stat = yield from client.keyspace_stat("ks", ctx)
        assert stat["n_pairs"] == len(model)

    env.run(env.process(driver()))
