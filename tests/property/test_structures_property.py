"""Property-based tests for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.pagecache import PageCache
from repro.lsm.iterator import merge_entries
from repro.lsm.memtable import LookupState, Memtable
from repro.ssd.ftl import Ftl

keys = st.binary(min_size=1, max_size=16)
values = st.binary(min_size=0, max_size=32)


# ------------------------------------------------------------------ memtable vs dict
@given(
    st.lists(
        st.tuples(keys, st.one_of(st.none(), values)),
        max_size=200,
    )
)
def test_memtable_matches_dict_model(ops):
    """A memtable behaves exactly like a dict with tombstones."""
    memtable = Memtable()
    model: dict[bytes, bytes | None] = {}
    for key, value in ops:
        if value is None:
            memtable.delete(key)
        else:
            memtable.put(key, value)
        model[key] = value
    assert len(memtable) == len(model)
    for key, value in model.items():
        state, got = memtable.get(key)
        if value is None:
            assert state is LookupState.DELETED
        else:
            assert state is LookupState.FOUND and got == value
    assert memtable.sorted_entries() == sorted(model.items())


@given(st.lists(st.tuples(keys, values), max_size=100))
def test_memtable_size_accounting_non_negative(ops):
    memtable = Memtable()
    for key, value in ops:
        memtable.put(key, value)
    assert memtable.approximate_bytes >= 0
    if ops:
        assert memtable.approximate_bytes > 0


# ------------------------------------------------------------------ merge iterator
@given(
    st.lists(
        st.dictionaries(keys, st.one_of(st.none(), values), max_size=30),
        min_size=1,
        max_size=5,
    ),
    st.booleans(),
)
def test_merge_matches_layered_dict_semantics(layer_dicts, drop_tombstones):
    """Merging newest->oldest sorted streams == stacking dict layers."""
    streams = [sorted(d.items()) for d in layer_dicts]
    merged = merge_entries(streams, drop_tombstones=drop_tombstones)

    model: dict[bytes, bytes | None] = {}
    for layer in reversed(layer_dicts):  # oldest first, newer overrides
        model.update(layer)
    expected = sorted(model.items())
    if drop_tombstones:
        expected = [(k, v) for k, v in expected if v is not None]
    assert merged == expected


@given(st.lists(st.dictionaries(keys, values, max_size=20), min_size=1, max_size=4))
def test_merge_output_sorted_and_unique(layer_dicts):
    streams = [sorted(d.items()) for d in layer_dicts]
    merged = merge_entries(streams, drop_tombstones=False)
    out_keys = [k for k, _ in merged]
    assert out_keys == sorted(set(out_keys))


# ------------------------------------------------------------------ FTL invariants
@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["write", "trim"]), st.integers(0, 255)),
        max_size=120,
    )
)
def test_ftl_mapping_invariants(ops):
    """l2p and p2l stay mutually consistent under any write/trim sequence."""
    ftl = Ftl(
        n_logical_pages=256,
        n_blocks=16,
        pages_per_block=32,
        n_channels=2,
        gc_reserve_blocks=1,
    )
    live: set[int] = set()
    for op, lpn in ops:
        if op == "write":
            ftl.write_pages(np.array([lpn]))
            live.add(lpn)
        else:
            ftl.trim_pages(np.array([lpn]))
            live.discard(lpn)
    assert ftl.mapped_pages() == len(live)
    for lpn in range(256):
        ppn = int(ftl.l2p[lpn])
        if lpn in live:
            assert ppn != -1
            assert ftl.p2l[ppn] == lpn
        else:
            assert ppn == -1
    # per-block valid counts equal the number of live pages
    assert int(ftl.valid_count.sum()) == len(live)
    # every physical page maps back consistently
    for ppn in range(16 * 32):
        lpn = int(ftl.p2l[ppn])
        if lpn != -1:
            assert ftl.l2p[lpn] == ppn


# ------------------------------------------------------------------ page cache
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 15), st.booleans()),
        max_size=100,
    )
)
def test_pagecache_never_exceeds_capacity_and_keeps_newest(ops):
    cache = PageCache(capacity_bytes=8 * 4096, page_size=4096)
    payload = {}
    for i, (fid, idx, dirty) in enumerate(ops):
        page = bytes([i % 256]) * 4096
        cache.put(fid, idx, page, dirty=dirty)
        payload[(fid, idx)] = page
        assert cache.size_bytes <= 8 * 4096
    # whatever is still cached must be the newest version written
    for (fid, idx), page in payload.items():
        if cache.contains(fid, idx):
            assert cache.get(fid, idx) == page
    # the most recently inserted page is always resident
    if ops:
        fid, idx, _ = ops[-1]
        assert cache.contains(fid, idx)


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 7)), max_size=60))
def test_pagecache_dirty_set_subset_of_resident(ops):
    cache = PageCache(capacity_bytes=4 * 4096, page_size=4096)
    for fid, idx in ops:
        cache.put(fid, idx, b"\x00" * 4096, dirty=True)
        # every dirty page must still be resident (evicted ones are handed back)
        for f in range(3):
            for page_idx, _data in cache.dirty_pages_of(f):
                assert cache.contains(f, page_idx)
