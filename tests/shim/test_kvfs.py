"""Tests for the TableFS-style file shim over a KV-CSD keyspace."""

import pytest

from repro.errors import (
    FileExistsInFsError,
    FileNotFoundInFsError,
    FilesystemError,
)
from repro.shim import KvShimFs

from tests.core.conftest import CsdTestbed


@pytest.fixture
def shim_tb():
    tb = CsdTestbed()
    shim = KvShimFs(tb.client, chunk_bytes=1024)
    tb.run(shim.mount(tb.ctx))
    return tb, shim


def write_file(tb, shim, path, data, piece=700):
    def proc():
        yield from shim.create(path, tb.ctx)
        for start in range(0, len(data), piece):
            yield from shim.append(path, data[start : start + piece], tb.ctx)
        yield from shim.close(path, tb.ctx)

    tb.run(proc())


def test_write_finalize_read_roundtrip(shim_tb):
    tb, shim = shim_tb
    payload = bytes(i % 251 for i in range(10_000))
    write_file(tb, shim, "/out/dump.bin", payload)
    tb.run(shim.finalize(tb.ctx))

    def read():
        data = yield from shim.read_file("/out/dump.bin", tb.ctx)
        return data

    assert tb.run(read()) == payload


def test_partial_reads(shim_tb):
    tb, shim = shim_tb
    payload = bytes(range(256)) * 20  # 5120 bytes, spans several 1KiB chunks
    write_file(tb, shim, "/f", payload)
    tb.run(shim.finalize(tb.ctx))

    def read(offset, length):
        def proc():
            data = yield from shim.read("/f", offset, length, tb.ctx)
            return data

        return tb.run(proc())

    assert read(0, 10) == payload[:10]
    assert read(1000, 100) == payload[1000:1100]  # crosses a chunk boundary
    assert read(5000, 1000) == payload[5000:]  # clipped at EOF
    assert read(5120, 10) == b""


def test_file_size_and_listing(shim_tb):
    tb, shim = shim_tb
    write_file(tb, shim, "/a", b"x" * 1500)
    write_file(tb, shim, "/b", b"y" * 10)
    tb.run(shim.finalize(tb.ctx))

    def proc():
        size_a = yield from shim.file_size("/a", tb.ctx)
        names = yield from shim.list_files(tb.ctx)
        return size_a, names

    size_a, names = tb.run(proc())
    assert size_a == 1500
    assert names == ["/a", "/b"]


def test_empty_file(shim_tb):
    tb, shim = shim_tb
    write_file(tb, shim, "/empty", b"")
    tb.run(shim.finalize(tb.ctx))

    def proc():
        size = yield from shim.file_size("/empty", tb.ctx)
        data = yield from shim.read_file("/empty", tb.ctx)
        return size, data

    assert tb.run(proc()) == (0, b"")


def test_finalize_closes_open_files(shim_tb):
    tb, shim = shim_tb

    def proc():
        yield from shim.create("/open", tb.ctx)
        yield from shim.append("/open", b"still-buffered", tb.ctx)
        yield from shim.finalize(tb.ctx)
        data = yield from shim.read_file("/open", tb.ctx)
        return data

    assert tb.run(proc()) == b"still-buffered"


def test_phase_discipline(shim_tb):
    tb, shim = shim_tb
    write_file(tb, shim, "/f", b"abc")

    def read_before_finalize():
        yield from shim.read_file("/f", tb.ctx)

    with pytest.raises(FilesystemError, match="not finalized"):
        tb.run(read_before_finalize())
    tb.run(shim.finalize(tb.ctx))

    def write_after_finalize():
        yield from shim.create("/late", tb.ctx)

    with pytest.raises(FilesystemError, match="read-only"):
        tb.run(write_after_finalize())


def test_error_cases(shim_tb):
    tb, shim = shim_tb

    def dup():
        yield from shim.create("/f", tb.ctx)
        yield from shim.create("/f", tb.ctx)

    with pytest.raises(FileExistsInFsError):
        tb.run(dup())

    def missing_append():
        yield from shim.append("/ghost", b"x", tb.ctx)

    with pytest.raises(FileNotFoundInFsError):
        tb.run(missing_append())


def test_missing_file_after_finalize(shim_tb):
    tb, shim = shim_tb
    write_file(tb, shim, "/f", b"abc")
    tb.run(shim.finalize(tb.ctx))

    def proc():
        yield from shim.file_size("/ghost", tb.ctx)

    with pytest.raises(FileNotFoundInFsError):
        tb.run(proc())


def test_many_small_files(shim_tb):
    tb, shim = shim_tb
    contents = {f"/rank-{i:04d}": bytes([i % 256]) * (i % 700) for i in range(40)}
    for path, data in contents.items():
        write_file(tb, shim, path, data)
    tb.run(shim.finalize(tb.ctx))

    def verify():
        for path, data in contents.items():
            got = yield from shim.read_file(path, tb.ctx)
            assert got == data, path
        return True

    assert tb.run(verify())
