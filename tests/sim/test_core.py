"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment, Event


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 1.5
    assert env.now == 1.5


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="hello")
        return got

    assert env.run(env.process(proc())) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    assert env.run(env.process(proc())) == 42


def test_processes_interleave_by_time():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc("b", 2.0))
    env.process(proc("a", 1.0))
    env.process(proc("c", 3.0))
    env.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_same_time_events_fifo_order():
    env = Environment()
    log = []

    def proc(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_waiting_on_another_process():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return "done"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    assert env.run(env.process(parent())) == (2.0, "done")


def test_child_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as e:
            return f"caught {e}"

    assert env.run(env.process(parent())) == "caught boom"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_manual_event_succeed():
    env = Environment()
    ev = env.event()
    results = []

    def waiter():
        val = yield ev
        results.append((env.now, val))

    def trigger():
        yield env.timeout(3.0)
        ev.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == [(3.0, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_throws_into_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        try:
            yield ev
        except ValueError:
            return "handled"

    def trigger():
        yield env.timeout(1.0)
        ev.fail(ValueError("nope"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(p) == "handled"


def test_failed_event_without_waiter_crashes_unless_defused():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("nobody listening"))
    with pytest.raises(ValueError):
        env.run()

    env2 = Environment()
    ev2 = env2.event()
    ev2.fail(ValueError("defused"))
    ev2.defuse()
    env2.run()  # does not raise


def test_run_until_time():
    env = Environment()
    log = []

    def proc():
        for _ in range(10):
            yield env.timeout(1.0)
            log.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_into_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_unfired_event_deadlock_detected():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_yielding_non_event_fails_process():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc():
        t = env.timeout(1.0, value="x")
        yield env.timeout(2.0)  # t fires (and is processed) meanwhile
        got = yield t
        return (env.now, got)

    assert env.run(env.process(proc())) == (2.0, "x")


def test_interrupt_wakes_process_early():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
            return "slept"
        except InterruptError as e:
            return ("interrupted", e.cause, env.now)

    def interrupter(victim):
        yield env.timeout(1.0)
        victim.interrupt(cause="wake up")

    p = env.process(sleeper())
    env.process(interrupter(p))
    assert env.run(p) == ("interrupted", "wake up", 1.0)


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except InterruptError:
            pass
        yield env.timeout(5.0)
        return env.now

    def interrupter(victim):
        yield env.timeout(2.0)
        victim.interrupt()

    p = env.process(sleeper())
    env.process(interrupter(p))
    assert env.run(p) == 7.0


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_is_alive():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_event_value_before_trigger_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(2.5)
    assert env.peek() == 2.5


def test_zero_delay_timeout_runs_at_current_time():
    env = Environment()

    def proc():
        yield env.timeout(0.0)
        return env.now

    assert env.run(env.process(proc())) == 0.0


def test_nested_yield_from_subroutines():
    env = Environment()

    def inner(n):
        yield env.timeout(n)
        return n * 2

    def outer():
        a = yield from inner(1.0)
        b = yield from inner(2.0)
        return a + b

    assert env.run(env.process(outer())) == 6.0
    assert env.now == 3.0


def test_cross_environment_event_rejected():
    env1 = Environment()
    env2 = Environment()

    def proc():
        yield env2.timeout(1.0)

    env1.process(proc())
    with pytest.raises(SimulationError, match="another environment"):
        env1.run()


def test_many_processes_deterministic():
    def run_once():
        env = Environment()
        log = []

        def proc(i):
            yield env.timeout(i % 7 * 0.1)
            log.append(i)
            yield env.timeout((i * 13) % 5 * 0.01)
            log.append(-i)

        for i in range(50):
            env.process(proc(i))
        env.run()
        return log

    assert run_once() == run_once()
