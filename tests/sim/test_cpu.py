"""Unit tests for the CPU pool model."""

import pytest

from repro.errors import SimulationError
from repro.sim import CpuPool, Environment


def test_single_core_serializes_work():
    env = Environment()
    cpu = CpuPool(env, n_cores=1, timeslice=10.0)
    done = []

    def worker(name):
        yield from cpu.execute(1.0, core=0)
        done.append((name, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_two_cores_run_in_parallel():
    env = Environment()
    cpu = CpuPool(env, n_cores=2, timeslice=10.0)
    done = []

    def worker(name):
        yield from cpu.execute(1.0)
        done.append((name, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 1.0)]


def test_pinning_forces_contention():
    env = Environment()
    cpu = CpuPool(env, n_cores=4, timeslice=10.0)
    done = []

    def worker(name):
        yield from cpu.execute(1.0, core=0)  # both pinned to core 0
        done.append((name, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_cores_subset_restriction():
    env = Environment()
    cpu = CpuPool(env, n_cores=4, timeslice=10.0)
    done = []

    def worker(name):
        yield from cpu.execute(1.0, cores=[0, 1])
        done.append((name, env.now))

    for name in "abcd":
        env.process(worker(name))
    env.run()
    # 4 jobs on 2 allowed cores: two waves.
    times = sorted(t for _, t in done)
    assert times == [1.0, 1.0, 2.0, 2.0]


def test_timeslicing_interleaves_long_and_short_work():
    env = Environment()
    cpu = CpuPool(env, n_cores=1, timeslice=0.1)
    done = {}

    def long_job():
        yield from cpu.execute(1.0, core=0)
        done["long"] = env.now

    def short_job():
        yield env.timeout(0.05)  # arrives while long job is running
        yield from cpu.execute(0.1, core=0)
        done["short"] = env.now

    env.process(long_job())
    env.process(short_job())
    env.run()
    # Without timeslicing the short job would end at 1.1; with 0.1s slices it
    # gets the core after the first slice.
    assert done["short"] < 0.5
    assert done["long"] == pytest.approx(1.1)


def test_priority_beats_fifo_between_slices():
    env = Environment()
    cpu = CpuPool(env, n_cores=1, timeslice=0.1)
    order = []

    def job(name, prio, delay):
        yield env.timeout(delay)
        yield from cpu.execute(0.1, core=0, priority=prio)
        order.append(name)

    env.process(job("first", 5, 0.0))
    env.process(job("low", 5, 0.01))
    env.process(job("high", 0, 0.02))
    env.run()
    assert order == ["first", "high", "low"]


def test_busy_time_accounting():
    env = Environment()
    cpu = CpuPool(env, n_cores=2, timeslice=10.0)

    def worker(core, amount):
        yield from cpu.execute(amount, core=core)

    env.process(worker(0, 2.0))
    env.process(worker(1, 1.0))
    env.run()
    assert cpu.busy_time[0] == pytest.approx(2.0)
    assert cpu.busy_time[1] == pytest.approx(1.0)
    assert cpu.total_busy_time() == pytest.approx(3.0)
    util = cpu.utilization()
    assert util[0] == pytest.approx(1.0)
    assert util[1] == pytest.approx(0.5)


def test_zero_work_passes_through_queue():
    env = Environment()
    cpu = CpuPool(env, n_cores=1, timeslice=10.0)
    done = []

    def worker():
        yield from cpu.execute(0.0, core=0)
        done.append(env.now)

    env.process(worker())
    env.run()
    assert done == [0.0]


def test_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        CpuPool(env, n_cores=0)
    with pytest.raises(SimulationError):
        CpuPool(env, n_cores=1, timeslice=0.0)
    cpu = CpuPool(env, n_cores=2)

    def bad_core():
        yield from cpu.execute(1.0, core=7)

    def bad_both():
        yield from cpu.execute(1.0, core=0, cores=[1])

    def bad_negative():
        yield from cpu.execute(-1.0)

    for gen in (bad_core(), bad_both(), bad_negative()):
        env2 = Environment()
        cpu2 = CpuPool(env2, n_cores=2)
        # rebuild generator against cpu2's env - simpler: run and expect error
    env.process(bad_core())
    with pytest.raises(SimulationError):
        env.run()


def test_any_core_work_conserving():
    env = Environment()
    cpu = CpuPool(env, n_cores=3, timeslice=10.0)
    done = []

    def worker(name):
        yield from cpu.execute(1.0)
        done.append((name, env.now))

    for name in "abcdef":
        env.process(worker(name))
    env.run()
    times = sorted(t for _, t in done)
    assert times == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]


def test_utilization_at_time_zero():
    env = Environment()
    cpu = CpuPool(env, n_cores=2)
    assert cpu.utilization() == [0.0, 0.0]
