"""Edge-case tests for the simulation kernel under composition."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import AllOf, AnyOf, Container, CpuPool, Environment, Resource, Store


def test_interrupt_while_waiting_on_resource_releases_queue_slot():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def victim():
        req = res.request()
        try:
            yield req
        except InterruptError:
            res.release(req)  # cancel the queued request
            order.append("victim-interrupted")
            return

    def third():
        yield env.timeout(0.2)
        with res.request() as req:
            yield req
            order.append(("third-got-it", env.now))

    env.process(holder())
    v = env.process(victim())
    env.process(third())

    def interrupter():
        yield env.timeout(0.1)
        v.interrupt()

    env.process(interrupter())
    env.run()
    assert "victim-interrupted" in order
    # third acquired right after the holder released (no leaked slot)
    third_times = [t for entry, t in
                   (e for e in order if isinstance(e, tuple))
                   if entry == "third-got-it"]
    assert third_times == [pytest.approx(10.0)]


def test_nested_conditions():
    env = Environment()

    def proc():
        inner = AllOf(env, [env.timeout(1.0, value="a"), env.timeout(2.0, value="b")])
        outer = yield AnyOf(env, [inner, env.timeout(10.0, value="slow")])
        return (env.now, len(outer))

    assert env.run(env.process(proc())) == (2.0, 1)


def test_process_waiting_on_itself_is_impossible_by_construction():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "done"

    p = env.process(proc())

    def waiter():
        result = yield p
        return result

    assert env.run(env.process(waiter())) == "done"


def test_two_processes_wait_same_event():
    env = Environment()
    ev = env.event()
    results = []

    def waiter(tag):
        value = yield ev
        results.append((tag, value, env.now))

    env.process(waiter("a"))
    env.process(waiter("b"))

    def trigger():
        yield env.timeout(2.0)
        ev.succeed("shared")

    env.process(trigger())
    env.run()
    assert results == [("a", "shared", 2.0), ("b", "shared", 2.0)]


def test_container_fifo_fairness():
    env = Environment()
    c = Container(env, capacity=100.0, init=0.0)
    order = []

    def getter(tag, amount, delay):
        yield env.timeout(delay)
        yield c.get(amount)
        order.append(tag)

    env.process(getter("first-large", 60.0, 0.0))
    env.process(getter("second-small", 10.0, 0.1))

    def producer():
        yield env.timeout(1.0)
        yield c.put(30.0)  # not enough for the first getter
        yield env.timeout(1.0)
        yield c.put(40.0)

    env.process(producer())
    env.run()
    # strict FIFO: the small getter waits behind the large one
    assert order == ["first-large", "second-small"]


def test_store_interleaved_producers_consumers():
    env = Environment()
    s = Store(env)
    got = []

    def consumer(tag, n):
        for _ in range(n):
            item = yield s.get()
            got.append((tag, item))

    def producer():
        for i in range(6):
            yield env.timeout(0.1)
            yield s.put(i)

    env.process(consumer("c1", 3))
    env.process(consumer("c2", 3))
    env.process(producer())
    env.run()
    assert sorted(item for _tag, item in got) == [0, 1, 2, 3, 4, 5]
    # consumers alternate (FIFO getter queue)
    assert [tag for tag, _ in got] == ["c1", "c2", "c1", "c2", "c1", "c2"]


def test_cpu_pool_priority_inversion_bounded_by_timeslice():
    """A low-priority hog cannot delay high-priority work by more than one
    timeslice."""
    env = Environment()
    cpu = CpuPool(env, n_cores=1, timeslice=0.01)
    t_done = {}

    def hog():
        yield from cpu.execute(1.0, core=0, priority=10)
        t_done["hog"] = env.now

    def urgent():
        yield env.timeout(0.005)  # arrives mid-slice
        yield from cpu.execute(0.01, core=0, priority=0)
        t_done["urgent"] = env.now

    env.process(hog())
    env.process(urgent())
    env.run()
    assert t_done["urgent"] <= 0.005 + 0.01 + 0.01 + 1e-9


def test_deterministic_under_heavy_concurrency():
    def run_once():
        env = Environment()
        cpu = CpuPool(env, n_cores=3, timeslice=0.02)
        res = Resource(env, capacity=2)
        log = []

        def worker(i):
            yield env.timeout((i * 31 % 7) * 0.01)
            with res.request(priority=i % 3) as req:
                yield req
                yield from cpu.execute(0.03 + (i % 5) * 0.01)
            log.append((i, round(env.now, 9)))

        for i in range(24):
            env.process(worker(i))
        env.run()
        return log

    assert run_once() == run_once()


def test_simulation_error_when_run_until_event_of_dead_simulation():
    env = Environment()
    ev = env.event()

    def nothing():
        yield env.timeout(1.0)

    env.process(nothing())
    with pytest.raises(SimulationError):
        env.run(until=ev)


# ------------------------------------------------------- kernel contract edges
def test_run_until_past_raises():
    env = Environment()
    env.process(_tick(env, 5.0))
    env.run(until=5.0)
    assert env.now == 5.0
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def _tick(env, delay):
    yield env.timeout(delay)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.process(_tick(env, 3.5))
    # the process-start event is immediate, so peek is "now" first
    assert env.peek() == 0.0
    env.step()
    assert env.peek() == 3.5
    env.run()
    assert env.peek() == float("inf")


def test_event_double_trigger_rejected():
    from repro.sim.core import Event

    env = Environment()
    ev = Event(env)
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("late"))
    ev2 = Event(env)
    ev2.fail(RuntimeError("boom"))
    ev2.defuse()
    with pytest.raises(SimulationError):
        ev2.succeed(3)
    env.run()


def test_failed_event_without_handler_crashes_unless_defused():
    from repro.sim.core import Event

    env = Environment()
    Event(env).fail(ValueError("unhandled"))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()

    env = Environment()
    ev = Event(env)
    ev.fail(ValueError("handled"))
    ev.defuse()
    env.run()  # defused: no crash
    assert not ev.ok


def test_same_time_events_fire_in_insertion_order():
    import random

    rng = random.Random(11)
    for _trial in range(20):
        env = Environment()
        fired = []
        n = rng.randrange(2, 40)
        at = rng.choice([0.0, 0.25, 1.0])

        def waiter(idx, delay):
            yield env.timeout(delay)
            fired.append(idx)

        for i in range(n):
            env.process(waiter(i, at))
        env.run()
        assert fired == list(range(n))


def test_same_time_priority_orders_before_insertion():
    from repro.sim.core import Event

    env = Environment()
    fired = []

    def arm(tag, priority):
        ev = Event(env)
        ev._ok = True
        env._schedule(ev, delay=1.0, priority=priority)
        ev.callbacks.append(lambda _evt, tag=tag: fired.append(tag))

    arm("low-a", 5)
    arm("high", 0)
    arm("low-b", 5)
    env.run()
    assert fired == ["high", "low-a", "low-b"]
