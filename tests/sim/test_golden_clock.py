"""Golden-clock equivalence: the fast-path kernel may not move the clock.

``golden_clock.json`` holds fingerprints (exact ``float.hex()`` clock
checkpoints, I/O counters, result digests) captured from the reference
kernel *before* the fast-path work landed.  Event coalescing, object
pooling, resource fast paths, and vectorized cost math all have to
reproduce these bit-for-bit — any drift means an optimisation reordered
events or changed charged latency, which breaks the determinism contract
every equivalence test in this repo leans on.

If a change is *supposed* to move the virtual clock (a new cost model, a
changed latency), regenerate with::

    PYTHONPATH=src python -m repro.bench.golden > tests/sim/golden_clock.json

and say so in the commit message.  Never regenerate to absorb accidental
drift from a performance change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.golden import (
    GOLDEN_WORKLOADS,
    critpath_testbeds,
    observed_testbeds,
)

GOLDEN_PATH = Path(__file__).with_name("golden_clock.json")


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _flatten(prefix: str, obj, out: dict) -> dict:
    if isinstance(obj, dict):
        for key, value in obj.items():
            _flatten(f"{prefix}.{key}", value, out)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            _flatten(f"{prefix}[{i}]", value, out)
    else:
        out[prefix] = obj
    return out


@pytest.mark.parametrize("name", sorted(GOLDEN_WORKLOADS))
def test_fingerprint_matches_golden(name: str, golden: dict):
    assert name in golden, (
        f"no golden record for workload {name!r} — regenerate "
        "tests/sim/golden_clock.json (see module docstring)"
    )
    fresh = _flatten(name, GOLDEN_WORKLOADS[name](), {})
    recorded = _flatten(name, golden[name], {})
    # Compare flat, so a failure names the exact checkpoint that drifted
    # instead of dumping two page-size dicts.
    assert fresh.keys() == recorded.keys()
    drifted = {
        key: (recorded[key], fresh[key])
        for key in recorded
        if fresh[key] != recorded[key]
    }
    assert not drifted, f"virtual-clock drift detected: {drifted}"


def test_golden_covers_every_workload(golden: dict):
    assert sorted(golden) == sorted(GOLDEN_WORKLOADS)


@pytest.mark.parametrize("name", ["serial_compaction", "async_qd16"])
def test_idle_observability_leaves_fingerprints_identical(name: str, golden: dict):
    """The zero-cost contract: journal + tracer + hub gauges installed, a
    TimelineRecorder constructed but never started, and a CritPathObserver
    constructed but never installed on ``env.critpath``, must leave every
    clock checkpoint, counter, and result digest byte-identical.  Only
    ``start()`` may schedule sampler events, and only installation makes
    the blocked-by/holder sites record anything."""
    with observed_testbeds():
        fresh = _flatten(name, GOLDEN_WORKLOADS[name](), {})
    recorded = _flatten(name, golden[name], {})
    drifted = {
        key: (recorded[key], fresh[key])
        for key in recorded
        if fresh[key] != recorded[key]
    }
    assert not drifted, (
        f"idle observability moved the virtual clock: {drifted}"
    )


@pytest.mark.parametrize("name", ["mixed_contention", "async_qd16"])
def test_installed_critpath_leaves_fingerprints_identical(name: str, golden: dict):
    """Recording blocked-by edges must not move the clock.  With the
    observer *installed* (tracer + ``env.critpath`` live), every wait and
    grant in the workload records holder identity — but the observer is
    pure bookkeeping with no simulation events, so the fingerprints still
    have to come out byte-identical to the uninstrumented reference."""
    with critpath_testbeds():
        fresh = _flatten(name, GOLDEN_WORKLOADS[name](), {})
    recorded = _flatten(name, golden[name], {})
    drifted = {
        key: (recorded[key], fresh[key])
        for key in recorded
        if fresh[key] != recorded[key]
    }
    assert not drifted, (
        f"recording blocked-by edges moved the virtual clock: {drifted}"
    )
