"""Unit tests for Resource / Container / Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def worker(name, hold):
        with res.request() as req:
            yield req
            log.append(("start", name, env.now))
            yield env.timeout(hold)
        log.append(("end", name, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 2.0))
    env.process(worker("c", 2.0))
    env.run()
    starts = {name: t for op, name, t in log if op == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 2.0  # had to wait for a slot


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    for name in "abcd":
        env.process(worker(name))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_priority_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    def worker(name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(0.1)

    env.process(holder())
    env.process(worker("low", 10, 0.1))
    env.process(worker("high", 0, 0.2))  # arrives later but jumps the queue
    env.run()
    assert order == ["high", "low"]


def test_resource_count_and_queue_len():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            assert res.count == 1
            yield env.timeout(1.0)

    def waiter():
        yield env.timeout(0.5)
        req = res.request()
        assert res.queue_len == 1
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert res.count == 0
    assert res.queue_len == 0


def test_release_queued_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    def canceller():
        yield env.timeout(0.1)
        req = res.request()
        res.release(req)  # cancel while still queued

    def other():
        yield env.timeout(0.2)
        with res.request() as req:
            yield req
            granted.append(env.now)

    env.process(holder())
    env.process(canceller())
    env.process(other())
    env.run()
    assert granted == [1.0]  # cancelled request did not consume the slot


def test_container_levels():
    env = Environment()
    c = Container(env, capacity=100.0, init=50.0)
    assert c.level == 50.0

    def proc():
        yield c.get(30.0)
        assert c.level == 20.0
        yield c.put(10.0)
        assert c.level == 30.0

    env.run(env.process(proc()))


def test_container_get_blocks_until_available():
    env = Environment()
    c = Container(env, capacity=100.0, init=0.0)
    log = []

    def consumer():
        yield c.get(40.0)
        log.append(("got", env.now))

    def producer():
        yield env.timeout(1.0)
        yield c.put(25.0)
        yield env.timeout(1.0)
        yield c.put(25.0)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [("got", 2.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10.0, init=10.0)
    log = []

    def producer():
        yield c.put(5.0)
        log.append(("put", env.now))

    def consumer():
        yield env.timeout(3.0)
        yield c.get(6.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put", 3.0)]


def test_container_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0.0)
    with pytest.raises(SimulationError):
        Container(env, capacity=10.0, init=11.0)
    c = Container(env, capacity=10.0)
    with pytest.raises(SimulationError):
        c.get(11.0)
    with pytest.raises(SimulationError):
        c.get(-1.0)
    with pytest.raises(SimulationError):
        c.put(-1.0)


def test_store_fifo():
    env = Environment()
    s = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield s.put(i)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield s.get()
            got.append((env.now, item))

    env.process(consumer())
    env.process(producer())
    env.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_when_empty():
    env = Environment()
    s = Store(env)
    log = []

    def consumer():
        item = yield s.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        yield s.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(5.0, "x")]


def test_store_bounded_put_blocks():
    env = Environment()
    s = Store(env, capacity=1)
    log = []

    def producer():
        yield s.put("a")
        yield s.put("b")  # blocks until 'a' consumed
        log.append(("b-in", env.now))

    def consumer():
        yield env.timeout(2.0)
        item = yield s.get()
        assert item == "a"

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("b-in", 2.0)]


def test_store_len():
    env = Environment()
    s = Store(env)

    def proc():
        yield s.put(1)
        yield s.put(2)
        assert len(s) == 2
        yield s.get()
        assert len(s) == 1

    env.run(env.process(proc()))
