"""Unit tests for RNG streams and stats primitives."""

import math

import pytest

from repro.sim import Counter, Histogram, RngRegistry, StatsRegistry, TimeSeries
from repro.sim.rng import derive_seed


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_rng_streams_independent():
    reg = RngRegistry(7)
    a1 = reg.stream("a").integers(0, 1 << 30, size=10)
    # A fresh registry's 'a' stream replays identically even if 'b' was used
    # in between on the other registry.
    reg2 = RngRegistry(7)
    reg2.stream("b").integers(0, 1 << 30, size=99)
    a2 = reg2.stream("a").integers(0, 1 << 30, size=10)
    assert list(a1) == list(a2)


def test_rng_stream_is_stateful_per_name():
    reg = RngRegistry(7)
    first = reg.stream("s").integers(0, 100, size=5)
    second = reg.stream("s").integers(0, 100, size=5)
    # same stream object: continues, doesn't restart
    assert list(first) != list(second) or True  # state advanced
    assert reg.stream("s") is reg.stream("s")


def test_rng_fork():
    reg = RngRegistry(7)
    child1 = reg.fork("child")
    child2 = RngRegistry(7).fork("child")
    x1 = child1.stream("x").random(4)
    x2 = child2.stream("x").random(4)
    assert list(x1) == list(x2)


def test_counter():
    c = Counter("ops")
    c.add()
    c.add(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.add(-1)


def test_histogram_percentiles():
    h = Histogram("lat")
    for v in [5, 1, 3, 2, 4]:
        h.record(v)
    assert h.count == 5
    assert h.min == 1
    assert h.max == 5
    assert h.mean == pytest.approx(3.0)
    assert h.percentile(50) == 3
    assert h.percentile(100) == 5
    assert h.percentile(0) == 1
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_empty():
    h = Histogram("lat")
    assert math.isnan(h.mean)
    assert math.isnan(h.percentile(50))
    summary = h.summary()
    assert summary["count"] == 0


def test_time_series_monotonic():
    ts = TimeSeries("depth")
    ts.sample(0.0, 1)
    ts.sample(1.0, 2)
    assert ts.last() == 2
    assert len(ts) == 2
    with pytest.raises(ValueError):
        ts.sample(0.5, 3)


def test_stats_registry_namespacing():
    reg = StatsRegistry("ssd0")
    reg.counter("reads").add(3)
    reg.histogram("lat").record(1.0)
    snap = reg.snapshot()
    assert snap["ssd0.reads"] == 3
    assert snap["ssd0.lat.mean"] == 1.0
    assert reg.counter("reads") is reg.counter("reads")
    assert reg.series("q") is reg.series("q")
