"""Unit tests for AllOf / AnyOf condition events and BoundedQueue."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment
from repro.sim.sync import BoundedQueue


def test_all_of_waits_for_slowest():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    assert env.run(env.process(proc())) == (3.0, ["a", "b"])


def test_any_of_fires_on_fastest():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    assert env.run(env.process(proc())) == (1.0, ["fast"])


def test_all_of_empty_list_fires_immediately():
    env = Environment()

    def proc():
        result = yield AllOf(env, [])
        return (env.now, result)

    assert env.run(env.process(proc())) == (0.0, {})


def test_any_of_empty_list_fires_immediately():
    env = Environment()

    def proc():
        result = yield AnyOf(env, [])
        return (env.now, result)

    assert env.run(env.process(proc())) == (0.0, {})


def test_all_of_with_already_processed_events():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="early")
        yield env.timeout(2.0)  # t1 processed by now
        t2 = env.timeout(1.0, value="late")
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    assert env.run(env.process(proc())) == (3.0, ["early", "late"])


def test_all_of_all_already_processed():
    env = Environment()

    def proc():
        t1 = env.timeout(0.5, value=1)
        t2 = env.timeout(1.0, value=2)
        yield env.timeout(2.0)
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    assert env.run(env.process(proc())) == (2.0, [1, 2])


def test_all_of_fails_fast_on_failure():
    env = Environment()

    def proc():
        ok = env.timeout(5.0, value="ok")
        bad = env.event()

        def failer():
            yield env.timeout(1.0)
            bad.fail(ValueError("broken"))

        env.process(failer())
        try:
            yield AllOf(env, [ok, bad])
        except ValueError as e:
            return (env.now, str(e))

    assert env.run(env.process(proc())) == (1.0, "broken")


def test_any_of_propagates_first_failure():
    env = Environment()

    def proc():
        slow = env.timeout(5.0)
        bad = env.event()

        def failer():
            yield env.timeout(1.0)
            bad.fail(RuntimeError("first"))

        env.process(failer())
        try:
            yield AnyOf(env, [slow, bad])
        except RuntimeError as e:
            return str(e)

    assert env.run(env.process(proc())) == "first"


def test_condition_rejects_foreign_events():
    env1 = Environment()
    env2 = Environment()
    t = env2.timeout(1.0)
    with pytest.raises(Exception):
        AllOf(env1, [t])


def test_env_helpers():
    env = Environment()

    def proc():
        r1 = yield env.all_of([env.timeout(1.0, value=1), env.timeout(2.0, value=2)])
        r2 = yield env.any_of([env.timeout(1.0, value=3), env.timeout(9.0, value=4)])
        return (sorted(r1.values()), list(r2.values()), env.now)

    assert env.run(env.process(proc())) == ([1, 2], [3], 3.0)


# --------------------------------------------------------------- BoundedQueue
def test_bounded_queue_rejects_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        BoundedQueue(env, 0)


def test_bounded_queue_fifo_order():
    env = Environment()
    queue = BoundedQueue(env, capacity=2)
    received = []

    def producer():
        for i in range(5):
            yield from queue.put(i)

    def consumer():
        for _ in range(5):
            item = yield from queue.get()
            received.append(item)
            yield env.timeout(1.0)

    env.process(producer())
    env.run(env.process(consumer()))
    assert received == [0, 1, 2, 3, 4]


def test_bounded_queue_put_blocks_when_full():
    env = Environment()
    queue = BoundedQueue(env, capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield from queue.put(i)
            times.append(env.now)

    def consumer():
        for _ in range(3):
            yield env.timeout(2.0)
            yield from queue.get()

    env.process(producer())
    env.run(env.process(consumer()))
    # first put is immediate, later puts wait for the consumer's drain
    assert times[0] == 0.0
    assert times[1] == 2.0
    assert times[2] == 4.0
    assert len(queue) == 0


def test_bounded_queue_get_blocks_until_put():
    env = Environment()
    queue = BoundedQueue(env, capacity=4)

    def producer():
        yield env.timeout(3.0)
        yield from queue.put("late")

    def consumer():
        item = yield from queue.get()
        return (env.now, item)

    env.process(producer())
    assert env.run(env.process(consumer())) == (3.0, "late")


def test_bounded_queue_sentinel_shutdown_pattern():
    # the producer/consumer idiom the compaction pipeline uses: a None
    # sentinel closes the stream
    env = Environment()
    queue = BoundedQueue(env, capacity=2)
    drained = []

    def producer():
        for i in range(4):
            yield from queue.put(i)
        yield from queue.put(None)

    def consumer():
        while True:
            item = yield from queue.get()
            if item is None:
                return drained
            drained.append(item)

    env.process(producer())
    assert env.run(env.process(consumer())) == [0, 1, 2, 3]
