"""Unit tests for the SoC board, DRAM budget and SPDK driver."""

import pytest

from repro.errors import SimulationError
from repro.nvme.commands import ZoneAppendCmd, ZoneReadCmd
from repro.sim import Environment
from repro.soc import DramBudget, SocBoard, SocSpec
from repro.ssd import SsdGeometry, ZnsSsd
from repro.units import MiB


def make_board(env, **spec_kw):
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    return SocBoard(env, ssd, spec=SocSpec(**spec_kw)) if spec_kw else SocBoard(env, ssd)


def test_spec_validation():
    with pytest.raises(SimulationError):
        SocSpec(n_cores=0)
    with pytest.raises(SimulationError):
        SocSpec(arm_slowdown=0)
    with pytest.raises(SimulationError):
        SocSpec(sort_budget_bytes=10**18)


def test_scale_cpu():
    env = Environment()
    board = make_board(env, arm_slowdown=3.0)
    assert board.scale_cpu(1.0) == pytest.approx(3.0)


def test_dram_budget_reserve_release():
    env = Environment()
    dram = DramBudget(env, capacity_bytes=1000)
    log = []

    def user():
        yield from dram.reserve(800)
        log.append(("got-800", env.now))
        yield env.timeout(1.0)
        yield from dram.release(800)

    def second():
        yield env.timeout(0.1)
        yield from dram.reserve(500)  # must wait for the first release
        log.append(("got-500", env.now))
        yield from dram.release(500)

    env.process(user())
    env.process(second())
    env.run()
    assert log == [("got-800", 0.0), ("got-500", 1.0)]
    assert dram.available == 1000


def test_dram_over_reserve_rejected():
    env = Environment()
    dram = DramBudget(env, capacity_bytes=100)

    def proc():
        yield from dram.reserve(200)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_spdk_path_executes_commands():
    env = Environment()
    board = make_board(env)
    ctx = board.firmware_ctx()

    def proc():
        c = yield from board.spdk.submit(ZoneAppendCmd(zone_id=0, data=b"soc!"), ctx)
        r = yield from board.spdk.submit(
            ZoneReadCmd(zone_id=0, offset=c.value, length=4), ctx
        )
        return r.value

    assert env.run(env.process(proc())) == b"soc!"
    assert env.now > 0


def test_firmware_ctx_uses_soc_pool():
    env = Environment()
    board = make_board(env, n_cores=2)
    ctx = board.firmware_ctx()

    def proc():
        yield from ctx.execute(0.5)

    env.run(env.process(proc()))
    assert board.cpu.total_busy_time() == pytest.approx(0.5)
