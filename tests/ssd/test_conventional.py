"""Unit tests for the conventional (FTL-based) SSD."""

import pytest

from repro.errors import InvalidAddressError
from repro.sim import Environment
from repro.ssd import ConventionalSsd, SsdGeometry
from repro.units import KiB, MiB


def small_ssd(env, **kw):
    geometry = SsdGeometry(n_channels=2, n_zones=8, zone_size=MiB, pages_per_block=32)
    return ConventionalSsd(env, geometry=geometry, **kw)


def run(env, gen):
    return env.run(env.process(gen))


def test_write_read_roundtrip():
    env = Environment()
    ssd = small_ssd(env)
    payload = bytes(range(256)) * 16  # 4096 bytes

    def proc():
        yield from ssd.write(0, payload)
        data = yield from ssd.read(0, 4096)
        return data

    assert run(env, proc()) == payload


def test_unwritten_reads_zeroes():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        data = yield from ssd.read(8192, 4096)
        return data

    assert run(env, proc()) == b"\x00" * 4096


def test_overwrite_returns_new_data():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.write(0, b"a" * 4096)
        yield from ssd.write(0, b"b" * 4096)
        data = yield from ssd.read(0, 4096)
        return data

    assert run(env, proc()) == b"b" * 4096


def test_alignment_enforced():
    env = Environment()
    ssd = small_ssd(env)

    def bad_offset():
        yield from ssd.write(100, b"x" * 4096)

    def bad_length():
        yield from ssd.read(0, 100)

    env.process(bad_offset())
    with pytest.raises(InvalidAddressError):
        env.run()
    env2 = Environment()
    ssd2 = small_ssd(env2)
    env2.process(bad_length())
    with pytest.raises(InvalidAddressError):
        env2.run()


def test_out_of_range_rejected():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.write(ssd.capacity, b"x" * 4096)

    env.process(proc())
    with pytest.raises(InvalidAddressError):
        env.run()


def test_capacity_below_raw_geometry():
    env = Environment()
    ssd = small_ssd(env)
    assert ssd.capacity < ssd.geometry.capacity  # over-provisioning hidden


def test_multi_page_write_uses_both_channels():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.write(0, b"x" * (8 * 4096))

    run(env, proc())
    busy = ssd.stats.channel_busy
    assert set(busy) == {0, 1}
    # Striped evenly: both channels carried 4 pages.
    assert busy[0] == pytest.approx(busy[1])


def test_large_write_faster_than_serial_single_channel():
    # With page striping over 2 channels, a 64-page write should take about
    # half the single-channel time.
    env = Environment()
    ssd = small_ssd(env)
    nbytes = 64 * 4096

    def proc():
        yield from ssd.write(0, b"x" * nbytes)

    run(env, proc())
    single_channel_time = ssd.latency.write_time(nbytes)
    assert env.now < 0.75 * single_channel_time


def test_trim_then_read_zeroes():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.write(0, b"q" * 4096)
        yield from ssd.trim(0, 4096)
        data = yield from ssd.read(0, 4096)
        return data

    assert run(env, proc()) == b"\x00" * 4096


def test_gc_traffic_counted_under_churn():
    env = Environment()
    geometry = SsdGeometry(
        n_channels=2, n_zones=8, zone_size=256 * KiB, pages_per_block=16
    )
    ssd = ConventionalSsd(env, geometry=geometry)
    write_size = 16 * 4096

    def churn():
        for _ in range(40):
            yield from ssd.write(0, b"z" * write_size)

    run(env, churn())
    assert ssd.stats.gc_bytes_copied >= 0
    assert ssd.stats.erase_ops > 0  # wraparound forced erases
    # data still intact
    env2_data = run(env, ssd.read(0, write_size))
    assert env2_data == b"z" * write_size


def test_stats_track_user_bytes():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.write(0, b"x" * 8192)
        yield from ssd.read(0, 4096)

    run(env, proc())
    assert ssd.stats.bytes_written >= 8192
    assert ssd.stats.bytes_read >= 4096
