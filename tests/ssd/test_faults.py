"""Failure injection: media errors propagate cleanly through every layer."""

import pytest

from repro.errors import NvmeError, StorageError
from repro.nvme import NvmeController, QueuePair, ZoneAppendCmd
from repro.sim import Environment
from repro.ssd import ConventionalSsd, SsdGeometry, ZnsSsd
from repro.ssd.faults import FaultPlan, MediaError
from repro.units import MiB

from tests.core.conftest import CsdTestbed, make_pairs


def test_fault_plan_budgets():
    plan = FaultPlan(fail_reads=2, after_reads=1)
    plan.check_read()  # skipped (after_reads)
    with pytest.raises(MediaError):
        plan.check_read()
    with pytest.raises(MediaError):
        plan.check_read()
    plan.check_read()  # budget exhausted -> success
    assert plan.injected == ["read", "read"]
    assert plan.exhausted


def test_zns_read_fault_raises():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(fail_reads=1)

    def proc():
        off = yield from ssd.append(0, b"data")
        yield from ssd.read(0, off, 4)

    env.process(proc())
    with pytest.raises(MediaError):
        env.run()


def test_conventional_write_fault_raises():
    env = Environment()
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(n_channels=2, n_zones=8, zone_size=MiB, pages_per_block=32),
    )
    ssd.faults = FaultPlan(fail_writes=1)

    def proc():
        yield from ssd.write(0, b"x" * 4096)

    env.process(proc())
    with pytest.raises(MediaError):
        env.run()


def test_controller_converts_fault_to_error_completion():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(fail_writes=1)
    qp = QueuePair(env, NvmeController(env, ssd), depth=4)

    def proc():
        yield from qp.submit(ZoneAppendCmd(zone_id=0, data=b"x"))

    env.process(proc())
    with pytest.raises(NvmeError, match="MediaError"):
        env.run()


def test_device_survives_after_fault_budget_exhausted():
    """A transient fault window passes; subsequent operations succeed and
    previously written data is intact."""
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))

    def write_ok():
        yield from ssd.append(0, b"before")

    env.run(env.process(write_ok()))
    ssd.faults = FaultPlan(fail_writes=1)

    def write_faulted():
        try:
            yield from ssd.append(0, b"fails")
            return "no-error"
        except MediaError:
            return "raised"

    assert env.run(env.process(write_faulted())) == "raised"

    def write_after():
        off = yield from ssd.append(0, b"after")
        first = yield from ssd.read(0, 0, 6)
        second = yield from ssd.read(0, off, 5)
        return first, second

    first, second = env.run(env.process(write_after()))
    assert first == b"before"
    assert second == b"after"


def test_kvcsd_query_fault_reaches_client():
    """An injected media error during a device-side query surfaces to the
    application instead of returning corrupt data."""
    tb = CsdTestbed()
    pairs = make_pairs(500)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    tb.ssd.faults = FaultPlan(fail_reads=1)

    def query():
        yield from tb.client.get("ks", pairs[0][0], tb.ctx)

    with pytest.raises(StorageError):
        tb.run(query())
    # the fault window passed; the same query now succeeds
    tb.ssd.faults = None

    def retry():
        value = yield from tb.client.get("ks", pairs[0][0], tb.ctx)
        return value

    assert tb.run(retry()) == pairs[0][1]
