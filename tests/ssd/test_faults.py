"""Failure injection: media errors propagate cleanly through every layer."""

import pytest

from repro.errors import NvmeError, StorageError
from repro.nvme import NvmeController, QueuePair, ZoneAppendCmd
from repro.sim import Environment
from repro.ssd import ConventionalSsd, SsdGeometry, ZnsSsd
from repro.ssd.faults import FaultPlan, MediaError
from repro.units import MiB

from tests.core.conftest import CsdTestbed, make_pairs


def test_fault_plan_budgets():
    plan = FaultPlan(fail_reads=2, after_reads=1)
    plan.check_read()  # skipped (after_reads)
    with pytest.raises(MediaError):
        plan.check_read()
    with pytest.raises(MediaError):
        plan.check_read()
    plan.check_read()  # budget exhausted -> success
    assert plan.injected == ["read", "read"]
    assert plan.exhausted


def test_zns_read_fault_raises():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(fail_reads=1)

    def proc():
        off = yield from ssd.append(0, b"data")
        yield from ssd.read(0, off, 4)

    env.process(proc())
    with pytest.raises(MediaError):
        env.run()


def test_conventional_write_fault_raises():
    env = Environment()
    ssd = ConventionalSsd(
        env,
        geometry=SsdGeometry(n_channels=2, n_zones=8, zone_size=MiB, pages_per_block=32),
    )
    ssd.faults = FaultPlan(fail_writes=1)

    def proc():
        yield from ssd.write(0, b"x" * 4096)

    env.process(proc())
    with pytest.raises(MediaError):
        env.run()


def test_controller_converts_fault_to_error_completion():
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(fail_writes=1)
    qp = QueuePair(env, NvmeController(env, ssd), depth=4)

    def proc():
        yield from qp.submit(ZoneAppendCmd(zone_id=0, data=b"x"))

    env.process(proc())
    with pytest.raises(NvmeError, match="MediaError"):
        env.run()


def test_device_survives_after_fault_budget_exhausted():
    """A transient fault window passes; subsequent operations succeed and
    previously written data is intact."""
    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))

    def write_ok():
        yield from ssd.append(0, b"before")

    env.run(env.process(write_ok()))
    ssd.faults = FaultPlan(fail_writes=1)

    def write_faulted():
        try:
            yield from ssd.append(0, b"fails")
            return "no-error"
        except MediaError:
            return "raised"

    assert env.run(env.process(write_faulted())) == "raised"

    def write_after():
        off = yield from ssd.append(0, b"after")
        first = yield from ssd.read(0, 0, 6)
        second = yield from ssd.read(0, off, 5)
        return first, second

    first, second = env.run(env.process(write_after()))
    assert first == b"before"
    assert second == b"after"


def test_kvcsd_query_fault_reaches_client():
    """An injected media error during a device-side query surfaces to the
    application instead of returning corrupt data."""
    tb = CsdTestbed()
    pairs = make_pairs(500)

    def setup():
        yield from tb.client.create_keyspace("ks", tb.ctx)
        yield from tb.client.open_keyspace("ks", tb.ctx)
        yield from tb.client.bulk_put("ks", pairs, tb.ctx)
        yield from tb.client.compact("ks", tb.ctx)
        yield from tb.client.wait_for_device("ks", tb.ctx)

    tb.run(setup())
    tb.ssd.faults = FaultPlan(fail_reads=1)

    def query():
        yield from tb.client.get("ks", pairs[0][0], tb.ctx)

    with pytest.raises(StorageError):
        tb.run(query())
    # the fault window passed; the same query now succeeds
    tb.ssd.faults = None

    def retry():
        value = yield from tb.client.get("ks", pairs[0][0], tb.ctx)
        return value

    assert tb.run(retry()) == pairs[0][1]


def test_event_cut_kills_device_at_exact_sequence():
    from repro.obs.journal import install_journal, journal_event
    from repro.ssd.faults import PowerCut

    env = Environment()
    journal = install_journal(env)
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    plan = FaultPlan(cut_at_event=2)
    ssd.faults = plan
    journal.on_record = plan.observe_event

    def proc():
        yield from ssd.append(0, b"first")
        journal_event(env, "membuf.flush")
        journal_event(env, "metadata.checkpoint")  # the cut fires here

    env.process(proc())
    with pytest.raises(PowerCut):
        env.run()
    assert plan.power_cut
    assert "power_cut" in plan.injected
    # the device is dead: reads, writes, and zone management all refuse
    for op in (ssd.append(0, b"x"), ssd.read(0, 0, 5),
               ssd.reset_zone(0), ssd.finish_zone(0)):
        with pytest.raises(PowerCut):
            env.run(env.process(op))
    # pre-cut data is intact on flash
    assert bytes(ssd.zone(0)._data) == b"first"


def test_torn_append_persists_exact_prefix():
    from repro.ssd.faults import PowerCut

    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(torn_after_writes=2, torn_keep_fraction=0.25)

    def proc():
        yield from ssd.append(0, b"A" * 100)  # write 1 lands fully
        yield from ssd.append(0, b"B" * 100)  # write 2 tears at 25%

    env.process(proc())
    with pytest.raises(PowerCut):
        env.run()
    assert bytes(ssd.zone(0)._data) == b"A" * 100 + b"B" * 25
    assert ssd.faults.power_cut


def test_flash_state_survives_power_cycle():
    from repro.ssd.faults import PowerCut

    env = Environment()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd.faults = FaultPlan(torn_after_writes=2)

    def proc():
        yield from ssd.append(1, b"durable")
        yield from ssd.append(2, b"torn in half")

    env.process(proc())
    with pytest.raises(PowerCut):
        env.run()
    snapshot = ssd.flash_state()

    env2 = Environment()
    ssd2 = ZnsSsd(env2, geometry=SsdGeometry(n_channels=2, n_zones=4, zone_size=MiB))
    ssd2.load_flash_state(snapshot)

    def read_back():
        whole = yield from ssd2.read(1, 0, 7)
        prefix = yield from ssd2.read(2, 0, ssd2.zone(2).write_pointer)
        return whole, prefix

    whole, prefix = env2.run(env2.process(read_back()))
    assert whole == b"durable"
    assert prefix == b"torn i"  # half of the 12-byte append


def test_fault_plan_introspects_power_cut_state():
    plan = FaultPlan(cut_at_event=5, cut_event_type="membuf.flush",
                     torn_after_writes=3)
    state = plan.introspect()
    assert state["cut_at_event"] == 5
    assert state["cut_event_type"] == "membuf.flush"
    assert state["torn_after_writes"] == 3
    assert state["power_cut"] is False
