"""Unit tests for the page-mapped FTL."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.ssd import Ftl


def make_ftl(n_logical=512, n_blocks=16, ppb=64, channels=2, reserve=1):
    return Ftl(
        n_logical_pages=n_logical,
        n_blocks=n_blocks,
        pages_per_block=ppb,
        n_channels=channels,
        gc_reserve_blocks=reserve,
    )


def test_overprovisioning_enforced():
    with pytest.raises(StorageError):
        Ftl(
            n_logical_pages=1024,
            n_blocks=16,
            pages_per_block=64,
            n_channels=2,
            gc_reserve_blocks=1,
        )


def test_blocks_must_stripe_evenly():
    with pytest.raises(StorageError):
        Ftl(n_logical_pages=8, n_blocks=15, pages_per_block=64, n_channels=2)


def test_write_maps_pages():
    ftl = make_ftl()
    alloc, gc = ftl.write_pages(np.array([0, 1, 2]))
    assert gc == []
    assert ftl.mapped_pages() == 3
    assert len(set(alloc.ppns.tolist())) == 3
    # round-robin across 2 channels
    assert alloc.channels.tolist() == [0, 1, 0]


def test_overwrite_invalidates_old_page():
    ftl = make_ftl()
    alloc1, _ = ftl.write_pages(np.array([5]))
    old_ppn = int(alloc1.ppns[0])
    alloc2, _ = ftl.write_pages(np.array([5]))
    new_ppn = int(alloc2.ppns[0])
    assert new_ppn != old_ppn
    assert ftl.p2l[old_ppn] == -1
    assert ftl.p2l[new_ppn] == 5
    assert ftl.mapped_pages() == 1


def test_out_of_range_lpn_rejected():
    ftl = make_ftl()
    with pytest.raises(StorageError):
        ftl.write_pages(np.array([10**9]))
    with pytest.raises(StorageError):
        ftl.write_pages(np.array([-1]))


def test_trim_unmaps():
    ftl = make_ftl()
    ftl.write_pages(np.arange(10))
    ftl.trim_pages(np.arange(5))
    assert ftl.mapped_pages() == 5
    # trimming unmapped pages is a no-op
    ftl.trim_pages(np.arange(5))
    assert ftl.mapped_pages() == 5


def test_gc_reclaims_invalidated_space():
    # Small device: force wraparound by overwriting the same logical range.
    ftl = make_ftl(n_logical=256, n_blocks=16, ppb=32, channels=2, reserve=1)
    lpns = np.arange(128)
    total_gc = 0
    for _ in range(20):
        _, gc_events = ftl.write_pages(lpns)
        total_gc += sum(g.erased_blocks for g in gc_events)
    assert total_gc > 0  # GC must have run
    assert ftl.mapped_pages() == 128
    # Every mapped page is still consistent: l2p and p2l agree.
    for lpn in range(128):
        ppn = int(ftl.l2p[lpn])
        assert ppn != -1
        assert ftl.p2l[ppn] == lpn


def test_gc_prefers_emptier_blocks():
    ftl = make_ftl(n_logical=256, n_blocks=16, ppb=32, channels=2, reserve=1)
    # Fill, then invalidate everything: GC victims should move ~0 pages.
    ftl.write_pages(np.arange(256))
    ftl.trim_pages(np.arange(256))
    work = ftl.collect(0)
    assert work.moved_pages == 0
    assert work.erased_blocks == 1


def test_valid_count_consistency():
    ftl = make_ftl()
    rng = np.random.default_rng(0)
    for _ in range(50):
        lpns = rng.integers(0, 512, size=16)
        ftl.write_pages(np.unique(lpns))
    # Sum of per-block valid counts equals number of mapped logical pages.
    assert int(ftl.valid_count.sum()) == ftl.mapped_pages()


def test_read_channels_for_unmapped_defaults_to_zero():
    ftl = make_ftl()
    channels = ftl.read_channels(np.array([100, 101]))
    assert channels.tolist() == [0, 0]
