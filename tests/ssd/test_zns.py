"""Unit tests for the ZNS SSD device model."""

import pytest

from repro.errors import StorageError
from repro.sim import Environment
from repro.ssd import NandLatencyModel, SsdGeometry, ZnsSsd, ZoneState
from repro.units import KiB, MiB


def small_ssd(env, n_channels=2, n_zones=4, zone_size=MiB):
    return ZnsSsd(
        env,
        geometry=SsdGeometry(
            n_channels=n_channels, n_zones=n_zones, zone_size=zone_size
        ),
    )


def run(env, gen):
    return env.run(env.process(gen))


def test_append_read_roundtrip():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        off = yield from ssd.append(0, b"hello zns")
        data = yield from ssd.read(0, off, 9)
        return data

    assert run(env, proc()) == b"hello zns"


def test_append_returns_sequential_offsets():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        offs = []
        for chunk in (b"aa", b"bbb", b"c"):
            off = yield from ssd.append(0, chunk)
            offs.append(off)
        return offs

    assert run(env, proc()) == [0, 2, 5]


def test_io_takes_time():
    env = Environment()
    lat = NandLatencyModel()
    ssd = ZnsSsd(env, geometry=SsdGeometry(n_channels=2, n_zones=4), latency=lat)

    def proc():
        yield from ssd.append(0, b"x" * 4096)

    run(env, proc())
    assert env.now == pytest.approx(lat.write_time(4096))


def test_same_channel_io_serializes():
    env = Environment()
    ssd = small_ssd(env, n_channels=2, n_zones=4)
    lat = ssd.latency
    done = []

    def writer(zone):
        yield from ssd.append(zone, b"x" * 4096)
        done.append(env.now)

    # zones 0 and 2 share channel 0
    env.process(writer(0))
    env.process(writer(2))
    env.run()
    t = lat.write_time(4096)
    assert done == [pytest.approx(t), pytest.approx(2 * t)]


def test_different_channels_parallel():
    env = Environment()
    ssd = small_ssd(env, n_channels=2, n_zones=4)
    lat = ssd.latency
    done = []

    def writer(zone):
        yield from ssd.append(zone, b"x" * 4096)
        done.append(env.now)

    # zones 0 and 1 are on different channels
    env.process(writer(0))
    env.process(writer(1))
    env.run()
    t = lat.write_time(4096)
    assert done == [pytest.approx(t), pytest.approx(t)]


def test_concurrent_appends_to_one_zone_do_not_collide():
    env = Environment()
    ssd = small_ssd(env)
    offsets = []

    def writer(payload):
        off = yield from ssd.append(0, payload)
        offsets.append((off, payload))

    env.process(writer(b"aaaa"))
    env.process(writer(b"bb"))
    env.run()
    # Offsets must be disjoint and data must land where claimed.
    assert sorted(off for off, _ in offsets) == [0, 4]

    def check():
        a = yield from ssd.read(0, 0, 4)
        b = yield from ssd.read(0, 4, 2)
        return a, b

    a, b = run(env, check())
    assert a == b"aaaa"
    assert b == b"bb"


def test_reset_zone_reclaims():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.append(1, b"junk")
        yield from ssd.reset_zone(1)
        return ssd.zone(1).state

    assert run(env, proc()) == ZoneState.EMPTY
    assert ssd.stats.erase_ops == 1


def test_finish_zone():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.append(1, b"data")
        yield from ssd.finish_zone(1)

    run(env, proc())
    assert ssd.zone(1).state == ZoneState.FULL


def test_stats_accumulate():
    env = Environment()
    ssd = small_ssd(env)

    def proc():
        yield from ssd.append(0, b"x" * 100)
        yield from ssd.read(0, 0, 50)

    run(env, proc())
    assert ssd.stats.bytes_written == 100
    assert ssd.stats.bytes_read == 50
    assert ssd.stats.write_ops == 1
    assert ssd.stats.read_ops == 1
    assert ssd.bytes_stored() == 100


def test_stats_delta():
    env = Environment()
    ssd = small_ssd(env)

    def phase1():
        yield from ssd.append(0, b"x" * 100)

    def phase2():
        yield from ssd.append(0, b"y" * 60)

    run(env, phase1())
    snap = ssd.stats.snapshot()
    run(env, phase2())
    d = ssd.stats.delta(snap)
    assert d.bytes_written == 60
    assert d.write_ops == 1


def test_free_zone_accounting():
    env = Environment()
    ssd = small_ssd(env, n_zones=4)
    assert ssd.free_zones == 4

    def proc():
        yield from ssd.append(0, b"x")

    run(env, proc())
    assert ssd.free_zones == 3
    assert ssd.zones_in_state(ZoneState.OPEN) == [0]


def test_bad_zone_id_rejected():
    env = Environment()
    ssd = small_ssd(env, n_zones=4)
    with pytest.raises(StorageError):
        ssd.zone(99)


def test_channel_busy_tracked():
    env = Environment()
    ssd = small_ssd(env, n_channels=2, n_zones=4)

    def proc():
        yield from ssd.append(0, b"x" * 8192)

    run(env, proc())
    assert ssd.stats.channel_busy[0] == pytest.approx(ssd.latency.write_time(8192))
