"""Unit tests for Zone and SsdGeometry."""

import pytest

from repro.errors import (
    InvalidAddressError,
    StorageError,
    ZoneFullError,
    ZoneStateError,
)
from repro.ssd import SsdGeometry, Zone, ZoneState
from repro.units import KiB, MiB


def test_geometry_defaults_consistent():
    g = SsdGeometry()
    assert g.capacity == g.n_zones * g.zone_size
    assert g.blocks_per_zone == g.zone_size // g.logical_block_size


def test_geometry_validation():
    with pytest.raises(StorageError):
        SsdGeometry(n_channels=0)
    with pytest.raises(StorageError):
        SsdGeometry(n_zones=0)
    with pytest.raises(StorageError):
        SsdGeometry(zone_size=MiB + 1)  # not multiple of block size
    with pytest.raises(StorageError):
        SsdGeometry(n_zones=10, n_channels=8)  # uneven striping
    with pytest.raises(StorageError):
        SsdGeometry(logical_block_size=256)


def test_geometry_channel_mapping_round_robin():
    g = SsdGeometry(n_channels=4, n_zones=8)
    assert [g.channel_of_zone(z) for z in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    with pytest.raises(StorageError):
        g.channel_of_zone(8)


def test_zone_initial_state():
    z = Zone(0, capacity=64 * KiB, channel=0)
    assert z.state == ZoneState.EMPTY
    assert z.write_pointer == 0
    assert z.remaining == 64 * KiB


def test_zone_append_advances_pointer_and_state():
    z = Zone(0, capacity=100, channel=0)
    off = z.append(b"hello")
    assert off == 0
    assert z.write_pointer == 5
    assert z.state == ZoneState.OPEN
    off2 = z.append(b"world")
    assert off2 == 5
    assert z.read(0, 10) == b"helloworld"


def test_zone_fills_and_rejects_overflow():
    z = Zone(0, capacity=8, channel=0)
    z.append(b"12345678")
    assert z.state == ZoneState.FULL
    with pytest.raises(ZoneStateError):
        z.append(b"x")


def test_zone_append_beyond_capacity_rejected():
    z = Zone(0, capacity=8, channel=0)
    z.append(b"1234")
    with pytest.raises(ZoneFullError):
        z.append(b"567890")
    # failed append must not have altered the zone
    assert z.write_pointer == 4


def test_zone_read_beyond_write_pointer_rejected():
    z = Zone(0, capacity=100, channel=0)
    z.append(b"abc")
    with pytest.raises(InvalidAddressError):
        z.read(0, 4)
    with pytest.raises(InvalidAddressError):
        z.read(-1, 1)


def test_zone_finish_and_reset():
    z = Zone(0, capacity=100, channel=0)
    with pytest.raises(ZoneStateError):
        z.finish()  # cannot finish EMPTY
    z.append(b"abc")
    z.finish()
    assert z.state == ZoneState.FULL
    z.reset()
    assert z.state == ZoneState.EMPTY
    assert z.write_pointer == 0
    # reusable after reset
    z.append(b"xyz")
    assert z.read(0, 3) == b"xyz"
