"""The README quickstart snippet must actually work as written."""


def test_readme_quickstart_snippet():
    from repro.bench import build_kvcsd_testbed

    tb = build_kvcsd_testbed(seed=1)
    client, env, ctx = tb.client, tb.env, tb.thread_ctx(core=0)

    def app():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        yield from client.bulk_put("ks", [(b"key", b"value")], ctx)
        yield from client.compact("ks", ctx)
        yield from client.wait_for_device("ks", ctx)
        value = yield from client.get("ks", b"key", ctx)
        assert value == b"value"

    env.run(env.process(app()))
    assert env.now > 0


def test_readme_async_snippet():
    from repro.bench import build_kvcsd_testbed

    tb = build_kvcsd_testbed(seed=1, query_workers=4, queue_depth=16)
    client, env, ctx = tb.client, tb.env, tb.thread_ctx(core=0)

    def app():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        tickets = []
        for i in range(64):
            t = yield from client.put_async("ks", b"k%03d" % i, b"v" * 32, ctx)
            tickets.append(t)
        for t in tickets:
            yield from client.wait(t, ctx)
        yield from client.compact("ks", ctx)
        yield from client.wait_for_device("ks", ctx)
        t = yield from client.get_async("ks", b"k007", ctx)
        completion = yield from client.wait(t, ctx)
        assert completion.value == b"v" * 32

    env.run(env.process(app()))
    assert client.qp.submitted == client.qp.completed == client.qp.reaped


def test_readme_performance_knobs_snippet():
    from repro.bench import build_kvcsd_testbed

    tb = build_kvcsd_testbed(
        seed=1,
        compaction_shards=4,
        block_cache_bytes=8 << 20,
    )
    assert tb.device.compaction_shards == 4
    assert tb.device.block_cache is not None
    assert tb.board.spec.block_cache_bytes == 8 << 20
