"""The README quickstart snippet must actually work as written."""


def test_readme_quickstart_snippet():
    from repro.bench import build_kvcsd_testbed

    tb = build_kvcsd_testbed(seed=1)
    client, env, ctx = tb.client, tb.env, tb.thread_ctx(core=0)

    def app():
        yield from client.create_keyspace("ks", ctx)
        yield from client.open_keyspace("ks", ctx)
        yield from client.bulk_put("ks", [(b"key", b"value")], ctx)
        yield from client.compact("ks", ctx)
        yield from client.wait_for_device("ks", ctx)
        value = yield from client.get("ks", b"key", ctx)
        assert value == b"value"

    env.run(env.process(app()))
    assert env.now > 0


def test_readme_performance_knobs_snippet():
    from repro.bench import build_kvcsd_testbed

    tb = build_kvcsd_testbed(
        seed=1,
        compaction_shards=4,
        block_cache_bytes=8 << 20,
    )
    assert tb.device.compaction_shards == 4
    assert tb.device.block_cache is not None
    assert tb.board.spec.block_cache_bytes == 8 << 20
