"""Unit tests for size/time helpers."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    align_up,
    ceil_div,
    fmt_bytes,
    fmt_time,
    msec,
    nsec,
    transfer_time,
    usec,
)


def test_binary_units():
    assert KiB == 1024
    assert MiB == 1024 * 1024
    assert GiB == 1024**3


def test_time_helpers():
    assert usec(5) == pytest.approx(5e-6)
    assert msec(5) == pytest.approx(5e-3)
    assert nsec(5) == pytest.approx(5e-9)


def test_transfer_time():
    assert transfer_time(1000, 1000.0) == pytest.approx(1.0)
    assert transfer_time(1000, float("inf")) == 0.0
    with pytest.raises(ValueError):
        transfer_time(1000, 0)
    with pytest.raises(ValueError):
        transfer_time(1000, -5)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(1536) == "1.5 KiB"
    assert fmt_bytes(3 * MiB) == "3.0 MiB"
    assert fmt_bytes(5 * GiB) == "5.0 GiB"


def test_fmt_time():
    assert fmt_time(0) == "0 s"
    assert fmt_time(3e-9) == "3.0 ns"
    assert fmt_time(5e-6) == "5.0 us"
    assert fmt_time(2.5e-3) == "2.5 ms"
    assert fmt_time(4.2) == "4.20 s"


def test_ceil_div_and_align():
    assert ceil_div(10, 3) == 4
    assert ceil_div(9, 3) == 3
    assert ceil_div(0, 5) == 0
    with pytest.raises(ValueError):
        ceil_div(1, 0)
    assert align_up(10, 4) == 12
    assert align_up(8, 4) == 8
    assert align_up(0, 4) == 0


def test_result_table_exports():
    from repro.bench.report import ResultTable

    t = ResultTable("demo", ["x", "y"])
    t.add_row(1, 2.0)
    t.add_note("n1")
    d = t.to_dict()
    assert d["columns"] == ["x", "y"]
    assert d["rows"] == [[1, 2.0]]
    csv_text = t.to_csv()
    assert "x,y" in csv_text
    assert "1,2.0" in csv_text
    assert "# n1" in csv_text
