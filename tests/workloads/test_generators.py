"""Unit tests for synthetic, zipfian and VPIC workload generators."""

import struct

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ENERGY_OFFSET,
    ENERGY_WIDTH,
    SyntheticSpec,
    VpicDataset,
    VpicSpec,
    ZipfSampler,
    generate_keys,
    generate_pairs,
)


# ------------------------------------------------------------------ synthetic
def test_synthetic_sizes():
    pairs = generate_pairs(SyntheticSpec(n_pairs=100, key_bytes=16, value_bytes=32))
    assert len(pairs) == 100
    assert all(len(k) == 16 and len(v) == 32 for k, v in pairs)


def test_synthetic_keys_unique():
    pairs = generate_pairs(SyntheticSpec(n_pairs=10_000))
    assert len({k for k, _ in pairs}) == 10_000


def test_synthetic_deterministic_by_seed():
    a = generate_pairs(SyntheticSpec(n_pairs=50, seed=5))
    b = generate_pairs(SyntheticSpec(n_pairs=50, seed=5))
    c = generate_pairs(SyntheticSpec(n_pairs=50, seed=6))
    assert a == b
    assert a != c


def test_synthetic_keys_unordered():
    pairs = generate_pairs(SyntheticSpec(n_pairs=1000, seed=1))
    keys = [k for k, _ in pairs]
    assert keys != sorted(keys)  # random keys arrive unsorted


def test_synthetic_short_keys():
    keys = generate_keys(100, key_bytes=4, rng=np.random.default_rng(0))
    assert all(len(k) == 4 for k in keys)
    assert len(set(keys)) == 100
    with pytest.raises(WorkloadError):
        generate_keys(300, key_bytes=1, rng=np.random.default_rng(0))


def test_synthetic_validation():
    with pytest.raises(WorkloadError):
        SyntheticSpec(n_pairs=-1)
    with pytest.raises(WorkloadError):
        SyntheticSpec(n_pairs=1, key_bytes=0)
    with pytest.raises(WorkloadError):
        SyntheticSpec(n_pairs=1, value_bytes=-1)


def test_synthetic_zero_value_bytes():
    pairs = generate_pairs(SyntheticSpec(n_pairs=5, value_bytes=0))
    assert all(v == b"" for _, v in pairs)


def test_synthetic_data_bytes():
    spec = SyntheticSpec(n_pairs=1000, key_bytes=16, value_bytes=32)
    assert spec.data_bytes == 48_000


# ------------------------------------------------------------------ zipf
def test_zipf_skews_toward_low_ranks():
    sampler = ZipfSampler(n=1000, theta=0.99, rng=np.random.default_rng(0))
    samples = sampler.sample(20_000)
    top10 = np.count_nonzero(samples < 10) / len(samples)
    uniform10 = 10 / 1000
    assert top10 > 5 * uniform10  # strongly skewed


def test_zipf_theta_zero_is_uniform():
    sampler = ZipfSampler(n=100, theta=0.0, rng=np.random.default_rng(0))
    samples = sampler.sample(50_000)
    counts = np.bincount(samples, minlength=100)
    assert counts.min() > 0.5 * counts.mean()


def test_zipf_hottest_fraction():
    sampler = ZipfSampler(n=1000, theta=0.99)
    assert 0 < sampler.hottest_fraction(1) < 1
    assert sampler.hottest_fraction(1000) == pytest.approx(1.0)
    with pytest.raises(WorkloadError):
        sampler.hottest_fraction(0)


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfSampler(n=0)
    with pytest.raises(WorkloadError):
        ZipfSampler(n=10, theta=-1)


# ------------------------------------------------------------------ vpic
def test_vpic_layout():
    spec = VpicSpec(n_particles=1024, n_files=4, seed=0)
    dataset = VpicDataset(spec)
    particles = dataset.file_particles(0)
    assert len(particles) == 256
    pid, payload = particles[0]
    assert len(pid) == 16
    assert len(payload) == 32
    assert spec.particle_bytes == 48
    assert spec.dataset_bytes == 1024 * 48


def test_vpic_ids_unique_across_files():
    dataset = VpicDataset(VpicSpec(n_particles=2048, n_files=8, seed=0))
    all_ids = [
        pid for f in range(8) for pid, _ in dataset.file_particles(f)
    ]
    assert len(set(all_ids)) == 2048


def test_vpic_energy_embedded_in_payload():
    dataset = VpicDataset(VpicSpec(n_particles=256, n_files=4, seed=0))
    energies = dataset.energies()
    idx = 0
    for f in range(4):
        for _pid, payload in dataset.file_particles(f):
            embedded = struct.unpack("<f", payload[ENERGY_OFFSET : ENERGY_OFFSET + ENERGY_WIDTH])[0]
            assert embedded == pytest.approx(float(energies[idx]))
            idx += 1


def test_vpic_energy_heavy_tailed_and_positive():
    dataset = VpicDataset(VpicSpec(n_particles=20_000, n_files=4, seed=0))
    e = dataset.energies()
    assert e.min() >= 0
    # heavy tail: the max dwarfs the median
    assert e.max() > 4 * np.median(e)


def test_vpic_threshold_selectivity():
    dataset = VpicDataset(VpicSpec(n_particles=50_000, n_files=4, seed=0))
    for selectivity in (0.001, 0.01, 0.1, 0.2):
        threshold = dataset.energy_threshold(selectivity)
        hits = dataset.particles_above(threshold)
        assert hits == pytest.approx(selectivity * 50_000, rel=0.05)


def test_vpic_thresholds_monotonic():
    dataset = VpicDataset(VpicSpec(n_particles=10_000, n_files=4, seed=0))
    t1 = dataset.energy_threshold(0.001)
    t2 = dataset.energy_threshold(0.1)
    assert t1 > t2  # more selective queries need higher energy


def test_vpic_query_bounds_capture_range():
    lo, hi = VpicDataset.energy_query_bounds(5.0)
    assert struct.unpack("<f", lo)[0] == 5.0
    assert struct.unpack("<f", hi)[0] == float("inf")


def test_vpic_validation():
    with pytest.raises(WorkloadError):
        VpicSpec(n_particles=0)
    with pytest.raises(WorkloadError):
        VpicSpec(n_particles=10, n_files=3)  # uneven split
    dataset = VpicDataset(VpicSpec(n_particles=16, n_files=4))
    with pytest.raises(WorkloadError):
        dataset.file_particles(4)
    with pytest.raises(WorkloadError):
        dataset.energy_threshold(0.0)


def test_vpic_deterministic():
    a = VpicDataset(VpicSpec(n_particles=256, n_files=4, seed=9))
    b = VpicDataset(VpicSpec(n_particles=256, n_files=4, seed=9))
    assert a.file_particles(1) == b.file_particles(1)
