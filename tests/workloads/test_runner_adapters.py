"""Integration tests for the adapter layer and the multi-threaded runner."""

import pytest

from repro.bench.calibration import build_kvcsd_testbed, build_rocksdb_testbed
from repro.lsm import CompactionMode
from repro.workloads import (
    SyntheticSpec,
    generate_pairs,
    get_phase,
    load_phase,
    run_phase,
)


def small_pairs(n=512, seed=0):
    return generate_pairs(SyntheticSpec(n_pairs=n, seed=seed))


# ------------------------------------------------------------------ run_phase
def test_run_phase_measures_slowest_thread():
    kv = build_kvcsd_testbed(seed=0)
    env = kv.env

    def quick():
        yield env.timeout(0.1)

    def slow():
        yield env.timeout(0.5)

    report = run_phase(env, [quick(), slow()])
    assert report.seconds == pytest.approx(0.5)
    assert sorted(report.per_thread_seconds) == [
        pytest.approx(0.1),
        pytest.approx(0.5),
    ]


def test_run_phase_empty():
    kv = build_kvcsd_testbed(seed=0)
    report = run_phase(kv.env, [])
    assert report.seconds == 0.0


# ------------------------------------------------------------------ kv-csd adapter
def test_kvcsd_adapter_roundtrip():
    kv = build_kvcsd_testbed(seed=1)
    pairs = small_pairs()
    load_phase(kv.env, kv.adapter, [("ks", pairs, kv.thread_ctx(0))])

    def prepare():
        yield from kv.adapter.prepare_queries("ks", kv.thread_ctx(0))

    kv.env.run(kv.env.process(prepare()))
    report = get_phase(
        kv.env, kv.adapter, [("ks", [k for k, _ in pairs[:20]], kv.thread_ctx(0))]
    )
    assert report.operations == 20


def test_kvcsd_adapter_get_missing_returns_none():
    kv = build_kvcsd_testbed(seed=1)
    pairs = small_pairs()
    load_phase(kv.env, kv.adapter, [("ks", pairs, kv.thread_ctx(0))])

    def proc():
        yield from kv.adapter.prepare_queries("ks", kv.thread_ctx(0))
        value = yield from kv.adapter.get("ks", b"missing-key-0000", kv.thread_ctx(0))
        return value

    assert kv.env.run(kv.env.process(proc())) is None


def test_kvcsd_adapter_scan():
    kv = build_kvcsd_testbed(seed=1)
    pairs = sorted(small_pairs())
    load_phase(kv.env, kv.adapter, [("ks", pairs, kv.thread_ctx(0))])

    def proc():
        yield from kv.adapter.prepare_queries("ks", kv.thread_ctx(0))
        rows = yield from kv.adapter.scan("ks", pairs[5][0], pairs[10][0], kv.thread_ctx(0))
        return rows

    rows = kv.env.run(kv.env.process(proc()))
    assert [k for k, _ in rows] == [k for k, _ in pairs[5:10]]


def test_get_phase_raises_on_lost_key():
    kv = build_kvcsd_testbed(seed=1)
    pairs = small_pairs()
    load_phase(kv.env, kv.adapter, [("ks", pairs, kv.thread_ctx(0))])

    def prepare():
        yield from kv.adapter.prepare_queries("ks", kv.thread_ctx(0))

    kv.env.run(kv.env.process(prepare()))
    with pytest.raises(AssertionError, match="lost key"):
        get_phase(kv.env, kv.adapter, [("ks", [b"never-inserted!!"], kv.thread_ctx(0))])


# ------------------------------------------------------------------ rocksdb adapter
@pytest.mark.parametrize("mode", list(CompactionMode))
def test_rocksdb_adapter_roundtrip_all_modes(mode):
    rk = build_rocksdb_testbed(seed=2, compaction_mode=mode, n_test_threads=2)
    pairs = small_pairs(seed=2)
    load_phase(rk.env, rk.adapter, [("db", pairs, rk.thread_ctx(0))])
    report = get_phase(
        rk.env, rk.adapter, [("db", [k for k, _ in pairs[:20]], rk.thread_ctx(0))]
    )
    assert report.operations == 20


def test_rocksdb_adapter_deferred_finish_produces_single_run():
    rk = build_rocksdb_testbed(
        seed=2,
        compaction_mode=CompactionMode.DEFERRED,
        n_test_threads=1,
        data_bytes=4096 * 48,
    )
    pairs = small_pairs(n=4096, seed=3)
    load_phase(rk.env, rk.adapter, [("db", pairs, rk.thread_ctx(0))])
    db = rk.adapter.db("db")
    assert db.versions.l0_count() == 0
    assert db.stats.counter("compactions").value == 1


def test_rocksdb_adapter_prepare_queries_drops_cache():
    rk = build_rocksdb_testbed(seed=2, n_test_threads=1)
    pairs = small_pairs(seed=4)
    load_phase(rk.env, rk.adapter, [("db", pairs, rk.thread_ctx(0))])
    cached_before = rk.cache.size_bytes

    def proc():
        yield from rk.adapter.prepare_queries("db", rk.thread_ctx(0))

    rk.env.run(rk.env.process(proc()))
    assert rk.cache.size_bytes <= cached_before


def test_load_phase_multiple_threads_shared_container():
    kv = build_kvcsd_testbed(seed=5)
    chunks = [small_pairs(n=256, seed=10 + t) for t in range(4)]
    assignments = [("shared", chunks[t], kv.thread_ctx(t)) for t in range(4)]
    report = load_phase(kv.env, kv.adapter, assignments)
    assert report.operations == 4 * 256
    assert kv.device.keyspaces["shared"].n_pairs == 4 * 256


def test_load_phase_distinct_containers():
    kv = build_kvcsd_testbed(seed=5)
    assignments = [
        (f"ks-{t}", small_pairs(n=128, seed=20 + t), kv.thread_ctx(t))
        for t in range(3)
    ]
    load_phase(kv.env, kv.adapter, assignments)
    assert sorted(kv.device.list_keyspaces()) == ["ks-0", "ks-1", "ks-2"]
